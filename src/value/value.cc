#include "value/value.h"

#include <cassert>
#include <cmath>
#include <functional>

#include "common/coding.h"
#include "common/string_util.h"

namespace edadb {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = ValueType::kBool;
  out.data_ = v;
  return out;
}

Value Value::Int64(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt64;
  out.data_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.data_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.data_ = std::move(v);
  return out;
}

Value Value::Timestamp(TimestampMicros micros) {
  Value out;
  out.type_ = ValueType::kTimestamp;
  out.data_ = static_cast<int64_t>(micros);
  return out;
}

bool Value::bool_value() const {
  assert(type_ == ValueType::kBool);
  return std::get<bool>(data_);
}

int64_t Value::int64_value() const {
  assert(type_ == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::double_value() const {
  assert(type_ == ValueType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::string_value() const {
  assert(type_ == ValueType::kString);
  return std::get<std::string>(data_);
}

TimestampMicros Value::timestamp_value() const {
  assert(type_ == ValueType::kTimestamp);
  return std::get<int64_t>(data_);
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    case ValueType::kBool:
      return std::get<bool>(data_) ? 1.0 : 0.0;
    default:
      return Status::InvalidArgument("cannot convert " +
                                     std::string(ValueTypeToString(type_)) +
                                     " to DOUBLE");
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::get<int64_t>(data_);
    case ValueType::kBool:
      return std::get<bool>(data_) ? int64_t{1} : int64_t{0};
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      if (std::trunc(d) != d) {
        return Status::InvalidArgument("non-integral DOUBLE to INT64");
      }
      return static_cast<int64_t>(d);
    }
    default:
      return Status::InvalidArgument("cannot convert " +
                                     std::string(ValueTypeToString(type_)) +
                                     " to INT64");
  }
}

Result<bool> Value::AsBool() const {
  switch (type_) {
    case ValueType::kBool:
      return std::get<bool>(data_);
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::get<int64_t>(data_) != 0;
    case ValueType::kDouble:
      return std::get<double>(data_) != 0.0;
    default:
      return Status::InvalidArgument("cannot convert " +
                                     std::string(ValueTypeToString(type_)) +
                                     " to BOOL");
  }
}

namespace {

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

int CompareInt64(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

/// Numeric cross-type comparison; both values must be numeric or
/// timestamp.
int CompareNumeric(const Value& a, const Value& b) {
  if (a.type() != ValueType::kDouble && b.type() != ValueType::kDouble) {
    const int64_t av = a.type() == ValueType::kInt64 ? a.int64_value()
                                                     : a.timestamp_value();
    const int64_t bv = b.type() == ValueType::kInt64 ? b.int64_value()
                                                     : b.timestamp_value();
    return CompareInt64(av, bv);
  }
  const double av = *a.AsDouble();
  const double bv = *b.AsDouble();
  return Sign(av - bv);
}

bool IsNumericish(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble ||
         t == ValueType::kTimestamp;
}

/// Rank for total ordering: null < bool < numeric < string.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
    case ValueType::kTimestamp:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return Status::InvalidArgument("comparison with NULL");
  }
  if (IsNumericish(a.type_) && IsNumericish(b.type_)) {
    return CompareNumeric(a, b);
  }
  if (a.type_ != b.type_) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(ValueTypeToString(a.type_)) +
        " with " + std::string(ValueTypeToString(b.type_)));
  }
  switch (a.type_) {
    case ValueType::kBool:
      return CompareInt64(a.bool_value() ? 1 : 0, b.bool_value() ? 1 : 0);
    case ValueType::kString:
      return a.string_value().compare(b.string_value()) < 0
                 ? -1
                 : (a.string_value() == b.string_value() ? 0 : 1);
    default:
      return Status::Internal("unreachable compare");
  }
}

int Value::CompareTotalOrder(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type_);
  const int rb = TypeRank(b.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // Both null.
    case 1:
      return CompareInt64(a.bool_value() ? 1 : 0, b.bool_value() ? 1 : 0);
    case 2:
      return CompareNumeric(a, b);
    case 3: {
      const int c = a.string_value().compare(b.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type() == ValueType::kNull || b.type() == ValueType::kNull) {
    return a.type() == b.type();
  }
  auto cmp = Value::Compare(a, b);
  return cmp.ok() && *cmp == 0;
}

size_t Value::Hash() const {
  // Numeric values that compare equal must hash equal: hash the double
  // representation for all numeric-ish types when integral values fit.
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kBool:
      return std::hash<bool>()(std::get<bool>(data_)) ^ 0x1;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(data_)));
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(data_));
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(data_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return std::get<bool>(data_) ? "TRUE" : "FALSE";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      std::string s = StringPrintf("%.17g", std::get<double>(data_));
      // Keep doubles round-trippable but readable: trim "%.17g" noise only
      // when a shorter form parses back exactly.
      std::string shorter = StringPrintf("%g", std::get<double>(data_));
      if (std::stod(shorter) == std::get<double>(data_)) s = shorter;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : std::get<std::string>(data_)) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case ValueType::kTimestamp:
      return "TIMESTAMP '" + FormatTimestamp(std::get<int64_t>(data_)) + "'";
  }
  return "?";
}

void Value::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type_));
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      dst->push_back(std::get<bool>(data_) ? 1 : 0);
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      PutVarsint64(dst, std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      PutDouble(dst, std::get<double>(data_));
      break;
    case ValueType::kString:
      PutLengthPrefixed(dst, std::get<std::string>(data_));
      break;
  }
}

bool Value::DecodeFrom(std::string_view* input, Value* out) {
  if (input->empty()) return false;
  const uint8_t tag = static_cast<uint8_t>(input->front());
  input->remove_prefix(1);
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      if (input->empty()) return false;
      const char b = input->front();
      input->remove_prefix(1);
      *out = Value::Bool(b != 0);
      return true;
    }
    case ValueType::kInt64: {
      int64_t v;
      if (!GetVarsint64(input, &v)) return false;
      *out = Value::Int64(v);
      return true;
    }
    case ValueType::kTimestamp: {
      int64_t v;
      if (!GetVarsint64(input, &v)) return false;
      *out = Value::Timestamp(v);
      return true;
    }
    case ValueType::kDouble: {
      double d;
      if (!GetDouble(input, &d)) return false;
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string_view s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *out = Value::String(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace edadb
