#include "value/row_codec.h"

#include "common/coding.h"

namespace edadb {

void EncodeRow(const Record& record, std::string* dst) {
  PutVarint64(dst, record.num_values());
  for (size_t i = 0; i < record.num_values(); ++i) {
    record.value(i).EncodeTo(dst);
  }
}

Result<Record> DecodeRow(SchemaPtr schema, std::string_view input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("row: truncated value count");
  }
  if (count != schema->num_fields()) {
    return Status::Corruption("row: arity mismatch with schema");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Value v;
    if (!Value::DecodeFrom(&input, &v)) {
      return Status::Corruption("row: truncated value");
    }
    values.push_back(std::move(v));
  }
  if (!input.empty()) {
    return Status::Corruption("row: trailing bytes");
  }
  return Record(std::move(schema), std::move(values));
}

void EncodeAttributes(const AttributeList& attributes, std::string* dst) {
  PutVarint64(dst, attributes.size());
  for (const auto& [name, value] : attributes) {
    PutLengthPrefixed(dst, name);
    value.EncodeTo(dst);
  }
}

Result<AttributeList> DecodeAttributes(std::string_view input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("attributes: truncated count");
  }
  AttributeList out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(&input, &name)) {
      return Status::Corruption("attributes: truncated name");
    }
    Value v;
    if (!Value::DecodeFrom(&input, &v)) {
      return Status::Corruption("attributes: truncated value");
    }
    out.emplace_back(std::string(name), std::move(v));
  }
  if (!input.empty()) {
    return Status::Corruption("attributes: trailing bytes");
  }
  return out;
}

}  // namespace edadb
