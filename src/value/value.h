#ifndef EDADB_VALUE_VALUE_H_
#define EDADB_VALUE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace edadb {

/// Runtime type tags for dynamic values. kTimestamp is stored as
/// microseconds-since-epoch but kept distinct from kInt64 so event times
/// print and compare as times.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,
};

std::string_view ValueTypeToString(ValueType type);

/// A dynamically typed scalar: the unit of data in rows, events, queue
/// message attributes and expression evaluation. Values are ordered,
/// hashable and binary-serializable.
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int64(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Timestamp(TimestampMicros micros);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble;
  }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (asserts in debug builds); use the As* coercions for flexible reads.
  bool bool_value() const;
  int64_t int64_value() const;
  double double_value() const;
  const std::string& string_value() const;
  TimestampMicros timestamp_value() const;

  /// Numeric coercion: kInt64/kDouble/kBool/kTimestamp → double.
  EDADB_NODISCARD Result<double> AsDouble() const;
  /// kInt64/kBool/kTimestamp, and kDouble when integral → int64.
  EDADB_NODISCARD Result<int64_t> AsInt64() const;
  /// kBool directly; numerics are truthy when non-zero.
  EDADB_NODISCARD Result<bool> AsBool() const;

  /// Three-way comparison with numeric coercion between kInt64, kDouble
  /// and kTimestamp. Comparing incompatible types (e.g. string vs int)
  /// returns InvalidArgument. Null compares only against null (equal).
  EDADB_NODISCARD static Result<int> Compare(const Value& a, const Value& b);

  /// Total order over all values for use as index keys: first by type
  /// rank (null < bool < numeric < string), then by value; kInt64,
  /// kDouble and kTimestamp share the numeric rank and interleave by
  /// numeric value. Never fails.
  static int CompareTotalOrder(const Value& a, const Value& b);

  /// Equality under Compare semantics; incompatible types are unequal.
  friend bool operator==(const Value& a, const Value& b);

  size_t Hash() const;

  /// SQL-ish literal rendering: NULL, TRUE, 42, 3.14, 'text',
  /// TIMESTAMP '...'.
  std::string ToString() const;

  /// Binary codec (type byte + payload), appended to `dst`.
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(std::string_view* input, Value* out);

 private:
  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace edadb

#endif  // EDADB_VALUE_VALUE_H_
