#ifndef EDADB_ANALYTICS_STATS_H_
#define EDADB_ANALYTICS_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace edadb {

/// Numerically stable streaming moments (Welford). O(1) memory.
class StreamingStats {
 public:
  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 before two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// P² (Jain & Chlamtac) single-quantile estimator: O(1) memory, no
/// sample buffer. Used by continuous analytics to track latency/usage
/// quantiles online.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99.
  explicit P2Quantile(double q);

  void Add(double value);

  /// Current estimate; exact while fewer than 5 observations.
  double value() const;

  uint64_t count() const { return count_; }

 private:
  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Fixed-width histogram over [lo, hi) with underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double value);

  uint64_t count() const { return count_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Quantile from the histogram (linear interpolation within the
  /// bucket). Requires count() > 0.
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

/// Exponentially weighted moving average with EW variance of residuals.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void Add(double value);

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  /// EW estimate of squared deviation around the mean.
  double variance() const { return variance_; }
  double stddev() const;

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0;
  double variance_ = 0;
};

}  // namespace edadb

#endif  // EDADB_ANALYTICS_STATS_H_
