#ifndef EDADB_ANALYTICS_FORECASTER_H_
#define EDADB_ANALYTICS_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "analytics/stats.h"
#include "common/clock.h"

namespace edadb {

/// A model of expected behaviour: the tutorial's Part-1 framing is that
/// "systems and individuals have models (expectations) of behaviors of
/// their environments, and applications notify them when reality ...
/// deviates from their expectations." A Forecaster predicts the next
/// observation and an uncertainty band; observing updates the model
/// ("updating models").
class Forecaster {
 public:
  struct Prediction {
    double expected = 0;
    /// Scale of typical deviation; 0 before the model has enough data.
    double uncertainty = 0;
    bool ready = false;  // Enough history to predict.
  };

  virtual ~Forecaster() = default;

  virtual const std::string& name() const = 0;

  /// Prediction for the observation about to arrive at `ts`.
  virtual Prediction Predict(TimestampMicros ts) const = 0;

  /// Feeds reality into the model.
  virtual void Observe(TimestampMicros ts, double value) = 0;
};

/// Fixed expectation: mean ± band supplied up front. The baseline
/// "static threshold" the adaptive models are benchmarked against (E8).
class StaticForecaster : public Forecaster {
 public:
  StaticForecaster(double expected, double band);

  const std::string& name() const override { return name_; }
  Prediction Predict(TimestampMicros ts) const override;
  void Observe(TimestampMicros ts, double value) override;

 private:
  std::string name_ = "static";
  double expected_;
  double band_;
};

/// EWMA level + EW residual variance.
class EwmaForecaster : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);

  const std::string& name() const override { return name_; }
  Prediction Predict(TimestampMicros ts) const override;
  void Observe(TimestampMicros ts, double value) override;

 private:
  std::string name_ = "ewma";
  Ewma ewma_;
  uint64_t observations_ = 0;
};

/// Additive Holt-Winters (level + trend + seasonal components of a
/// fixed period), for signals with a repeating daily/weekly shape —
/// the utilities use case's "usage patterns". The first `period`
/// observations initialize the seasonal profile; predictions are not
/// `ready` until then. Residual spread tracked by EWMA of one-step
/// errors.
class SeasonalForecaster : public Forecaster {
 public:
  /// `period` = observations per season (e.g. 24 for hourly/daily).
  SeasonalForecaster(double alpha, double beta, double gamma,
                     size_t period);

  const std::string& name() const override { return name_; }
  Prediction Predict(TimestampMicros ts) const override;
  void Observe(TimestampMicros ts, double value) override;

 private:
  std::string name_ = "holt_winters";
  double alpha_;
  double beta_;
  double gamma_;
  size_t period_;
  std::vector<double> initial_window_;  // First period of observations.
  std::vector<double> seasonal_;
  bool initialized_ = false;
  double level_ = 0;
  double trend_ = 0;
  size_t position_ = 0;  // Index into the seasonal cycle.
  Ewma residual_var_;
};

/// Holt double-exponential smoothing (level + trend), so drifting
/// signals don't read as anomalies. Residual spread tracked by EWMA of
/// one-step-ahead errors.
class HoltForecaster : public Forecaster {
 public:
  HoltForecaster(double alpha, double beta);

  const std::string& name() const override { return name_; }
  Prediction Predict(TimestampMicros ts) const override;
  void Observe(TimestampMicros ts, double value) override;

 private:
  std::string name_ = "holt";
  double alpha_;
  double beta_;
  bool initialized_ = false;
  double level_ = 0;
  double trend_ = 0;
  Ewma residual_var_;
  uint64_t observations_ = 0;
};

}  // namespace edadb

#endif  // EDADB_ANALYTICS_FORECASTER_H_
