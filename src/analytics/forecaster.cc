#include "analytics/forecaster.h"

#include <cmath>

namespace edadb {

// ---------------------------------------------------------------------------
// StaticForecaster

StaticForecaster::StaticForecaster(double expected, double band)
    : expected_(expected), band_(band) {}

Forecaster::Prediction StaticForecaster::Predict(TimestampMicros) const {
  Prediction p;
  p.expected = expected_;
  p.uncertainty = band_;
  p.ready = true;
  return p;
}

void StaticForecaster::Observe(TimestampMicros, double) {
  // A static expectation never updates — that is its weakness on
  // drifting signals, which bench_models demonstrates.
}

// ---------------------------------------------------------------------------
// EwmaForecaster

EwmaForecaster::EwmaForecaster(double alpha) : ewma_(alpha) {}

Forecaster::Prediction EwmaForecaster::Predict(TimestampMicros) const {
  Prediction p;
  p.ready = observations_ >= 3;
  p.expected = ewma_.value();
  p.uncertainty = ewma_.stddev();
  return p;
}

void EwmaForecaster::Observe(TimestampMicros, double value) {
  ewma_.Add(value);
  ++observations_;
}

// ---------------------------------------------------------------------------
// SeasonalForecaster

SeasonalForecaster::SeasonalForecaster(double alpha, double beta,
                                       double gamma, size_t period)
    : alpha_(alpha),
      beta_(beta),
      gamma_(gamma),
      period_(period),
      residual_var_(alpha) {}

Forecaster::Prediction SeasonalForecaster::Predict(TimestampMicros) const {
  Prediction p;
  p.ready = initialized_;
  if (!initialized_) return p;
  p.expected = level_ + trend_ + seasonal_[position_];
  p.uncertainty = residual_var_.stddev();
  return p;
}

void SeasonalForecaster::Observe(TimestampMicros, double value) {
  if (!initialized_) {
    initial_window_.push_back(value);
    if (initial_window_.size() < period_) return;
    // Seasonal profile = deviation of each slot from the first-season
    // mean; level starts at that mean, trend at zero.
    double mean = 0;
    for (const double v : initial_window_) mean += v;
    mean /= static_cast<double>(period_);
    seasonal_.resize(period_);
    for (size_t i = 0; i < period_; ++i) {
      seasonal_[i] = initial_window_[i] - mean;
    }
    level_ = mean;
    trend_ = 0;
    position_ = 0;  // Next observation re-enters slot 0 of the cycle.
    initial_window_.clear();
    initialized_ = true;
    return;
  }
  const double forecast = level_ + trend_ + seasonal_[position_];
  residual_var_.Add(value - forecast);
  const double prev_level = level_;
  level_ = alpha_ * (value - seasonal_[position_]) +
           (1 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1 - beta_) * trend_;
  seasonal_[position_] =
      gamma_ * (value - level_) + (1 - gamma_) * seasonal_[position_];
  position_ = (position_ + 1) % period_;
}

// ---------------------------------------------------------------------------
// HoltForecaster

HoltForecaster::HoltForecaster(double alpha, double beta)
    : alpha_(alpha), beta_(beta), residual_var_(alpha) {}

Forecaster::Prediction HoltForecaster::Predict(TimestampMicros) const {
  Prediction p;
  p.ready = observations_ >= 3;
  p.expected = level_ + trend_;
  p.uncertainty = residual_var_.stddev();
  return p;
}

void HoltForecaster::Observe(TimestampMicros, double value) {
  if (!initialized_) {
    level_ = value;
    trend_ = 0;
    initialized_ = true;
    ++observations_;
    return;
  }
  const double forecast = level_ + trend_;
  residual_var_.Add(value - forecast);
  const double prev_level = level_;
  level_ = alpha_ * value + (1 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1 - beta_) * trend_;
  ++observations_;
}

}  // namespace edadb
