#ifndef EDADB_ANALYTICS_DETECTOR_H_
#define EDADB_ANALYTICS_DETECTOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/forecaster.h"
#include "common/clock.h"

namespace edadb {

/// Outcome of scoring one observation against the expectation model.
struct DetectionResult {
  bool ready = false;       // Model had enough history to judge.
  double expected = 0;      // Model's prediction.
  double score = 0;         // |value - expected| / uncertainty (sigmas).
  bool is_anomaly = false;  // score > threshold.
};

/// Management by exception (tutorial Part 1.f): a model predicts, the
/// detector scores how far reality deviates, and deviations beyond the
/// threshold become alert events. The threshold trades false positives
/// against false negatives — the keyword list's central statistics —
/// and bench_models (E8) sweeps it into an ROC curve.
class DeviationDetector {
 public:
  struct Options {
    /// Alert when |deviation| exceeds this many uncertainty units.
    double threshold_sigmas = 3.0;
    /// Floor on the uncertainty so early/quiet periods don't divide by
    /// ~zero and alert on noise.
    double min_uncertainty = 1e-9;
    /// Skip model update on anomalous observations, so a burst does not
    /// teach the model that the burst is normal. (Robust mode.)
    bool exclude_anomalies_from_model = false;
  };

  DeviationDetector(std::unique_ptr<Forecaster> model, Options options);

  /// Scores `value`, then feeds it to the model (unless excluded).
  DetectionResult Process(TimestampMicros ts, double value);

  const Forecaster& model() const { return *model_; }
  Forecaster* mutable_model() { return model_.get(); }
  const Options& options() const { return options_; }

 private:
  std::unique_ptr<Forecaster> model_;
  Options options_;
};

/// Binary-detector bookkeeping over labeled data.
struct ConfusionMatrix {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  void Add(bool predicted, bool actual);

  double precision() const;
  double recall() const;            // = true positive rate.
  double false_positive_rate() const;
  double f1() const;
  uint64_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  std::string ToString() const;
};

/// One operating point of the threshold sweep.
struct RocPoint {
  double threshold = 0;
  double false_positive_rate = 0;
  double true_positive_rate = 0;
};

/// Exact ROC over (score, is_actually_anomalous) pairs: one operating
/// point per distinct score, sorted by increasing FPR.
std::vector<RocPoint> ComputeRoc(
    const std::vector<std::pair<double, bool>>& scored);

/// Trapezoidal area under the curve; 0.5 = chance, 1.0 = perfect.
double RocAuc(const std::vector<RocPoint>& points);

}  // namespace edadb

#endif  // EDADB_ANALYTICS_DETECTOR_H_
