#include "analytics/detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace edadb {

DeviationDetector::DeviationDetector(std::unique_ptr<Forecaster> model,
                                     Options options)
    : model_(std::move(model)), options_(options) {}

DetectionResult DeviationDetector::Process(TimestampMicros ts,
                                           double value) {
  DetectionResult result;
  const Forecaster::Prediction prediction = model_->Predict(ts);
  result.ready = prediction.ready;
  result.expected = prediction.expected;
  if (prediction.ready) {
    const double uncertainty =
        std::max(prediction.uncertainty, options_.min_uncertainty);
    result.score = std::fabs(value - prediction.expected) / uncertainty;
    result.is_anomaly = result.score > options_.threshold_sigmas;
  }
  if (!(result.is_anomaly && options_.exclude_anomalies_from_model)) {
    model_->Observe(ts, value);
  }
  return result;
}

void ConfusionMatrix::Add(bool predicted, bool actual) {
  if (predicted && actual) ++true_positives;
  else if (predicted && !actual) ++false_positives;
  else if (!predicted && actual) ++false_negatives;
  else ++true_negatives;
}

double ConfusionMatrix::precision() const {
  const uint64_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const uint64_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::false_positive_rate() const {
  const uint64_t denom = false_positives + true_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2 * p * r / (p + r);
}

std::string ConfusionMatrix::ToString() const {
  return StringPrintf(
      "tp=%llu fp=%llu tn=%llu fn=%llu precision=%.3f recall=%.3f "
      "fpr=%.4f f1=%.3f",
      static_cast<unsigned long long>(true_positives),
      static_cast<unsigned long long>(false_positives),
      static_cast<unsigned long long>(true_negatives),
      static_cast<unsigned long long>(false_negatives), precision(),
      recall(), false_positive_rate(), f1());
}

std::vector<RocPoint> ComputeRoc(
    const std::vector<std::pair<double, bool>>& scored) {
  std::vector<std::pair<double, bool>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  uint64_t positives = 0;
  uint64_t negatives = 0;
  for (const auto& [score, actual] : sorted) {
    if (actual) ++positives;
    else ++negatives;
  }
  std::vector<RocPoint> points;
  if (positives == 0 || negatives == 0) return points;

  uint64_t tp = 0;
  uint64_t fp = 0;
  points.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].second) ++tp;
    else ++fp;
    // Emit an operating point after each distinct score value.
    if (i + 1 == sorted.size() || sorted[i + 1].first != sorted[i].first) {
      points.push_back(
          {sorted[i].first,
           static_cast<double>(fp) / static_cast<double>(negatives),
           static_cast<double>(tp) / static_cast<double>(positives)});
    }
  }
  return points;
}

double RocAuc(const std::vector<RocPoint>& points) {
  double auc = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    const double dx =
        points[i].false_positive_rate - points[i - 1].false_positive_rate;
    auc += dx *
           (points[i].true_positive_rate + points[i - 1].true_positive_rate) /
           2.0;
  }
  return auc;
}

}  // namespace edadb
