#include "analytics/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace edadb {

// ---------------------------------------------------------------------------
// StreamingStats

void StreamingStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

// ---------------------------------------------------------------------------
// P2Quantile

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  // Find the cell; clamp the extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers by parabolic (or linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1 && right_gap > 1) || (d <= -1 && left_gap < -1)) {
      const double sign = d >= 1 ? 1.0 : -1.0;
      // Parabolic prediction.
      const double np = positions_[i] + sign;
      const double parabolic =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / -left_gap);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Linear fallback.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const size_t idx = static_cast<size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(idx, count_ - 1)];
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double value) {
  ++count_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const size_t bucket =
      static_cast<size_t>((value - lo_) / width_);
  if (bucket >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bucket];
}

double Histogram::Quantile(double q) const {
  assert(count_ > 0);
  const uint64_t target = static_cast<uint64_t>(
      q * static_cast<double>(count_));
  uint64_t cumulative = underflow_;
  if (cumulative > target) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (cumulative + counts_[i] > target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : static_cast<double>(target - cumulative) /
                    static_cast<double>(counts_[i]);
      return lo_ + width_ * (static_cast<double>(i) + within);
    }
    cumulative += counts_[i];
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out += StringPrintf("[%.3g, %.3g): %llu\n",
                        lo_ + width_ * static_cast<double>(i),
                        lo_ + width_ * static_cast<double>(i + 1),
                        static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Ewma

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::Add(double value) {
  if (!initialized_) {
    value_ = value;
    variance_ = 0;
    initialized_ = true;
    return;
  }
  const double delta = value - value_;
  value_ += alpha_ * delta;
  variance_ = (1 - alpha_) * (variance_ + alpha_ * delta * delta);
}

double Ewma::stddev() const { return std::sqrt(variance_); }

}  // namespace edadb
