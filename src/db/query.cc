#include "db/query.h"

#include "expr/parser.h"

namespace edadb {

std::string_view Aggregate::FuncName(Func f) {
  switch (f) {
    case Func::kCount: return "count";
    case Func::kSum: return "sum";
    case Func::kAvg: return "avg";
    case Func::kMin: return "min";
    case Func::kMax: return "max";
  }
  return "?";
}

Status Query::SetWhere(std::string_view expr_source) {
  EDADB_ASSIGN_OR_RETURN(where, ParseExpression(expr_source));
  return Status::OK();
}

std::string QueryResult::ToString() const {
  std::string out;
  for (const Record& row : rows) {
    out += row.ToString();
    out += "\n";
  }
  return out;
}

QueryBuilder& QueryBuilder::Where(std::string_view source) {
  auto expr = ParseExpression(source);
  if (expr.ok()) {
    query_.where = *std::move(expr);
  } else {
    query_.build_error = expr.status();
  }
  return *this;
}

QueryBuilder& QueryBuilder::Count(std::string alias) {
  query_.aggregates.push_back(
      {Aggregate::Func::kCount, "", std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::Sum(std::string column, std::string alias) {
  if (alias.empty()) alias = "sum_" + column;
  query_.aggregates.push_back(
      {Aggregate::Func::kSum, std::move(column), std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::Avg(std::string column, std::string alias) {
  if (alias.empty()) alias = "avg_" + column;
  query_.aggregates.push_back(
      {Aggregate::Func::kAvg, std::move(column), std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::Min(std::string column, std::string alias) {
  if (alias.empty()) alias = "min_" + column;
  query_.aggregates.push_back(
      {Aggregate::Func::kMin, std::move(column), std::move(alias)});
  return *this;
}

QueryBuilder& QueryBuilder::Max(std::string column, std::string alias) {
  if (alias.empty()) alias = "max_" + column;
  query_.aggregates.push_back(
      {Aggregate::Func::kMax, std::move(column), std::move(alias)});
  return *this;
}

}  // namespace edadb
