#include "db/table.h"

#include "value/row_codec.h"

namespace edadb {

Table::Table(TableId id, std::string name, SchemaPtr schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::CreateIndex(const IndexDef& def) {
  if (schema_->FieldIndex(def.column) < 0) {
    return Status::NotFound("no column named '" + def.column + "' in table " +
                            name_);
  }
  if (indexes_.count(def.column) > 0) {
    return Status::AlreadyExists("index on '" + def.column +
                                 "' already exists");
  }
  auto index = std::make_unique<BTreeIndex>(def.unique);
  // Backfill from existing rows.
  Status status;
  ScanRows([&](RowId row_id, const Record& record) {
    auto v = record.Get(def.column);
    if (v.ok() && !v->is_null()) {
      status = index->Insert(*v, row_id);
      if (!status.ok()) return false;
    }
    return true;
  });
  EDADB_RETURN_IF_ERROR(status);
  indexes_.emplace(def.column, std::move(index));
  return Status::OK();
}

void Table::DropIndex(const std::string& column) { indexes_.erase(column); }

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

const BTreeIndex* Table::GetIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<IndexDef> Table::index_defs() const {
  std::vector<IndexDef> defs;
  defs.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) {
    defs.push_back({column, index->unique()});
  }
  return defs;
}

Status Table::CheckRecord(const Record& record) const {
  if (record.schema() == nullptr || !(*record.schema() == *schema_)) {
    // Allow records built against an identical schema instance.
    if (record.schema() == nullptr ||
        record.num_values() != schema_->num_fields()) {
      return Status::InvalidArgument("record schema does not match table " +
                                     name_);
    }
  }
  return record.Validate();
}

Status Table::IndexInsert(RowId row_id, const Record& record) {
  for (auto& [column, index] : indexes_) {
    auto v = record.Get(column);
    if (v.ok() && !v->is_null()) {
      EDADB_RETURN_IF_ERROR(index->Insert(*v, row_id));
    }
  }
  return Status::OK();
}

void Table::IndexErase(RowId row_id, const Record& record) {
  for (auto& [column, index] : indexes_) {
    auto v = record.Get(column);
    if (v.ok() && !v->is_null()) {
      index->Erase(*v, row_id);
    }
  }
}

Result<RowId> Table::ApplyInsert(RowId row_id, const Record& record) {
  EDADB_RETURN_IF_ERROR(CheckRecord(record));
  // Enforce unique indexes before touching the heap.
  for (auto& [column, index] : indexes_) {
    if (!index->unique()) continue;
    auto v = record.Get(column);
    if (v.ok() && !v->is_null() && !index->Lookup(*v).empty()) {
      return Status::AlreadyExists("unique index violation on '" + column +
                                   "' in table " + name_);
    }
  }
  std::string bytes;
  EncodeRow(record, &bytes);
  RowId id = row_id;
  if (id == 0) {
    id = heap_.Insert(std::move(bytes));
  } else {
    EDADB_RETURN_IF_ERROR(heap_.InsertWithId(id, std::move(bytes)));
  }
  EDADB_RETURN_IF_ERROR(IndexInsert(id, record));
  return id;
}

Status Table::ApplyUpdate(RowId row_id, const Record& record) {
  EDADB_RETURN_IF_ERROR(CheckRecord(record));
  EDADB_ASSIGN_OR_RETURN(Record old_record, GetRow(row_id));
  // Unique check, excluding this row itself.
  for (auto& [column, index] : indexes_) {
    if (!index->unique()) continue;
    auto v = record.Get(column);
    if (v.ok() && !v->is_null()) {
      for (const RowId other : index->Lookup(*v)) {
        if (other != row_id) {
          return Status::AlreadyExists("unique index violation on '" +
                                       column + "' in table " + name_);
        }
      }
    }
  }
  IndexErase(row_id, old_record);
  std::string bytes;
  EncodeRow(record, &bytes);
  EDADB_RETURN_IF_ERROR(heap_.Update(row_id, std::move(bytes)));
  return IndexInsert(row_id, record);
}

Status Table::ApplyDelete(RowId row_id) {
  EDADB_ASSIGN_OR_RETURN(Record old_record, GetRow(row_id));
  IndexErase(row_id, old_record);
  return heap_.Delete(row_id);
}

Result<Record> Table::GetRow(RowId row_id) const {
  const std::string* bytes = heap_.Get(row_id);
  if (bytes == nullptr) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            name_);
  }
  return DecodeRow(schema_, *bytes);
}

void Table::ScanRows(
    const std::function<bool(RowId, const Record&)>& fn) const {
  heap_.Scan([&](RowId row_id, const std::string& bytes) {
    auto record = DecodeRow(schema_, bytes);
    if (!record.ok()) return true;  // Skip undecodable rows (corrupt).
    return fn(row_id, *record);
  });
}

}  // namespace edadb
