#ifndef EDADB_DB_SNAPSHOT_H_
#define EDADB_DB_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "db/table.h"
#include "storage/wal.h"
#include "value/schema.h"

namespace edadb {

/// Serializable image of one table for checkpointing.
struct TableSnapshot {
  TableId id = 0;
  std::string name;
  std::vector<Field> fields;
  RowId next_row_id = 1;
  std::vector<IndexDef> indexes;
  std::vector<std::pair<RowId, std::string>> rows;  // (id, encoded bytes)
};

/// Full-database image: what Checkpoint() writes and recovery loads.
struct Snapshot {
  TableId next_table_id = 1;
  TxnId next_txn_id = 1;
  std::vector<TableSnapshot> tables;
};

/// CRC-guarded binary codec for snapshots.
std::string EncodeSnapshot(const Snapshot& snapshot);
EDADB_NODISCARD Result<Snapshot> DecodeSnapshot(std::string_view data);

/// Checkpoint metadata: which snapshot file is current and where WAL
/// replay must resume. Stored in `<dir>/CHECKPOINT` via atomic rename.
struct CheckpointMeta {
  std::string snapshot_file;  // Relative to the database dir.
  Lsn replay_from_lsn = 0;
};

std::string EncodeCheckpointMeta(const CheckpointMeta& meta);
EDADB_NODISCARD Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view data);

}  // namespace edadb

#endif  // EDADB_DB_SNAPSHOT_H_
