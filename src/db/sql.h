#ifndef EDADB_DB_SQL_H_
#define EDADB_DB_SQL_H_

#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/result.h"
#include "db/database.h"

namespace edadb {

/// Outcome of one SQL statement.
struct SqlResult {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete, kDdl };
  Kind kind = Kind::kDdl;
  /// Populated for SELECT.
  QueryResult result;
  /// Rows inserted/updated/deleted for DML.
  size_t rows_affected = 0;
};

/// Executes one statement of a small SQL dialect against `db`. Keywords
/// are case-insensitive; identifiers are case-sensitive; strings use
/// single quotes with '' escaping. Supported statements:
///
///   CREATE TABLE t (col TYPE [NOT NULL], ...)
///       TYPE ∈ BOOL | INT64/INTEGER/INT | DOUBLE/REAL | STRING/TEXT |
///              TIMESTAMP
///   DROP TABLE t
///   CREATE [UNIQUE] INDEX ON t (col)
///   INSERT INTO t [(a, b, ...)] VALUES (expr, ...)[, (expr, ...)...]
///   SELECT * | items FROM t [WHERE expr] [GROUP BY cols]
///       [ORDER BY col [ASC|DESC], ...] [LIMIT n]
///       items: column | COUNT(*) | COUNT/SUM/AVG/MIN/MAX(col)
///              [AS alias]
///   UPDATE t SET col = expr, ... [WHERE expr]
///   DELETE FROM t [WHERE expr]
///
/// Expressions are the full expr/ grammar (arithmetic, AND/OR/NOT, IN,
/// BETWEEN, LIKE, functions). INSERT values are constant expressions;
/// UPDATE SET expressions may reference the row's current columns.
/// INSERT coerces integer literals into DOUBLE and TIMESTAMP columns.
EDADB_NODISCARD Result<SqlResult> ExecuteSql(Database* db, std::string_view sql);

}  // namespace edadb

#endif  // EDADB_DB_SQL_H_
