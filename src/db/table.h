#ifndef EDADB_DB_TABLE_H_
#define EDADB_DB_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "storage/btree.h"
#include "storage/heap.h"
#include "storage/log_record.h"
#include "value/record.h"
#include "value/schema.h"

namespace edadb {

/// One secondary index over a single column.
struct IndexDef {
  std::string column;
  bool unique = false;
};

/// A table: schema + heap + secondary indexes. Tables do not write the
/// WAL themselves — the owning Database logs first and then calls the
/// Apply* methods, which are also what recovery replays. Thread-
/// compatible; the Database's lock serializes access.
class Table {
 public:
  Table(TableId id, std::string name, SchemaPtr schema);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return heap_.size(); }

  /// Registers and backfills an index on `column`.
  EDADB_NODISCARD Status CreateIndex(const IndexDef& def);
  /// Removes the index on `column` if present (used to roll back a
  /// CreateIndex whose WAL record failed to persist).
  void DropIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  const BTreeIndex* GetIndex(const std::string& column) const;
  std::vector<IndexDef> index_defs() const;

  // Physical mutations (post-WAL apply path and recovery replay).
  // ApplyInsert assigns the id when `row_id` is 0.
  EDADB_NODISCARD Result<RowId> ApplyInsert(RowId row_id, const Record& record);
  EDADB_NODISCARD Status ApplyUpdate(RowId row_id, const Record& record);
  EDADB_NODISCARD Status ApplyDelete(RowId row_id);

  /// Decoded row by id; NotFound when absent or deleted.
  EDADB_NODISCARD Result<Record> GetRow(RowId row_id) const;

  /// Visits all rows in row-id order; return false to stop.
  void ScanRows(
      const std::function<bool(RowId, const Record&)>& fn) const;

  /// Raw heap access for checkpointing.
  const TableHeap& heap() const { return heap_; }
  TableHeap* mutable_heap() { return &heap_; }

  /// Validates a record against the schema (arity, types, NOT NULL).
  EDADB_NODISCARD Status CheckRecord(const Record& record) const;

 private:
  /// Index maintenance around heap mutations.
  EDADB_NODISCARD Status IndexInsert(RowId row_id, const Record& record);
  void IndexErase(RowId row_id, const Record& record);

  TableId id_;
  std::string name_;
  SchemaPtr schema_;
  TableHeap heap_;
  std::map<std::string, std::unique_ptr<BTreeIndex>> indexes_;
};

}  // namespace edadb

#endif  // EDADB_DB_TABLE_H_
