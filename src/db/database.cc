#include "db/database.h"

#include <algorithm>
#include <cinttypes>
#include <set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "db/snapshot.h"
#include "storage/file.h"
#include "value/row_codec.h"

namespace edadb {

namespace {

constexpr char kCheckpointFileName[] = "CHECKPOINT";

metrics::Counter* CommitsCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("db.commits");
  return c;
}

metrics::Histogram* CommitLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("db.commit.latency_us");
  return h;
}

metrics::Histogram* CommitOpsHistogram() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("db.commit.ops");
  return h;
}

DmlOp LogTypeToDmlOp(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInsert: return kDmlInsert;
    case LogRecordType::kUpdate: return kDmlUpdate;
    default: return kDmlDelete;
  }
}

}  // namespace

std::string_view DmlOpToString(DmlOp op) {
  switch (op) {
    case kDmlInsert: return "INSERT";
    case kDmlUpdate: return "UPDATE";
    case kDmlDelete: return "DELETE";
  }
  return "?";
}

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Default()) {}

Database::~Database() = default;

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  EDADB_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  auto db = std::unique_ptr<Database>(new Database(std::move(options)));

  WalOptions wal_options;
  wal_options.dir = db->wal_dir();
  wal_options.segment_size_bytes = db->options_.wal_segment_size_bytes;
  wal_options.sync_policy = db->options_.wal_sync_policy;
  EDADB_ASSIGN_OR_RETURN(db->wal_, WalWriter::Open(std::move(wal_options)));

  EDADB_RETURN_IF_ERROR(db->Recover());
  return db;
}

// ---------------------------------------------------------------------------
// Recovery

Status Database::Recover() {
  recovering_ = true;
  Lsn replay_from = 0;
  const std::string meta_path = options_.dir + "/" + kCheckpointFileName;
  if (FileExists(meta_path)) {
    EDADB_ASSIGN_OR_RETURN(std::string data, ReadFileToString(meta_path));
    EDADB_ASSIGN_OR_RETURN(CheckpointMeta meta, DecodeCheckpointMeta(data));
    EDADB_RETURN_IF_ERROR(LoadSnapshot(options_.dir + "/" +
                                       meta.snapshot_file));
    replay_from = meta.replay_from_lsn;
  }
  const Status s = ReplayWal(replay_from);
  recovering_ = false;
  return s;
}

Status Database::LoadSnapshot(const std::string& path) {
  EDADB_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  EDADB_ASSIGN_OR_RETURN(Snapshot snap, DecodeSnapshot(data));
  next_table_id_ = snap.next_table_id;
  next_txn_id_ = snap.next_txn_id;
  for (TableSnapshot& ts : snap.tables) {
    auto table = std::make_unique<Table>(ts.id, ts.name,
                                         Schema::Make(std::move(ts.fields)));
    for (auto& [row_id, bytes] : ts.rows) {
      EDADB_RETURN_IF_ERROR(
          table->mutable_heap()->InsertWithId(row_id, std::move(bytes)));
    }
    table->mutable_heap()->set_next_row_id(ts.next_row_id);
    for (const IndexDef& def : ts.indexes) {
      EDADB_RETURN_IF_ERROR(table->CreateIndex(def));
    }
    tables_by_id_.emplace(ts.id, table.get());
    tables_.emplace(ts.name, std::move(table));
  }
  return Status::OK();
}

Status Database::ReplayWal(Lsn from_lsn) {
  WalCursor cursor(wal_dir(), from_lsn);
  std::map<TxnId, std::vector<LogRecord>> pending;
  WalEntry entry;
  for (;;) {
    EDADB_ASSIGN_OR_RETURN(bool more, cursor.Next(&entry));
    if (!more) break;
    EDADB_ASSIGN_OR_RETURN(LogRecord rec,
                           LogRecord::Decode(entry.type, entry.payload));
    if (rec.txn_id >= next_txn_id_) next_txn_id_ = rec.txn_id + 1;
    switch (rec.type) {
      case LogRecordType::kBeginTxn:
        pending[rec.txn_id];
        break;
      case LogRecordType::kCommitTxn: {
        auto it = pending.find(rec.txn_id);
        if (it != pending.end()) {
          for (const LogRecord& op : it->second) {
            EDADB_RETURN_IF_ERROR(ApplyLogRecord(op));
          }
          pending.erase(it);
        }
        break;
      }
      case LogRecordType::kAbortTxn:
        pending.erase(rec.txn_id);
        break;
      case LogRecordType::kInsert:
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        pending[rec.txn_id].push_back(std::move(rec));
        break;
      case LogRecordType::kCreateTable:
      case LogRecordType::kDropTable:
      case LogRecordType::kCreateIndex:
        EDADB_RETURN_IF_ERROR(ApplyLogRecord(rec));
        break;
      case LogRecordType::kCheckpoint:
        break;  // Informational; recovery starts from the meta file.
    }
  }
  // Transactions without a commit record are discarded (crash mid-txn).
  return Status::OK();
}

Status Database::ApplyLogRecord(const LogRecord& rec) {
  switch (rec.type) {
    case LogRecordType::kCreateTable: {
      if (tables_.count(rec.table_name) > 0) {
        return Status::Corruption("replay: table '" + rec.table_name +
                                  "' already exists");
      }
      auto table = std::make_unique<Table>(rec.table_id, rec.table_name,
                                           Schema::Make(rec.schema_fields));
      tables_by_id_.emplace(rec.table_id, table.get());
      tables_.emplace(rec.table_name, std::move(table));
      if (rec.table_id >= next_table_id_) next_table_id_ = rec.table_id + 1;
      return Status::OK();
    }
    case LogRecordType::kDropTable: {
      auto it = tables_.find(rec.table_name);
      if (it == tables_.end()) return Status::OK();  // Already gone.
      tables_by_id_.erase(it->second->id());
      tables_.erase(it);
      return Status::OK();
    }
    case LogRecordType::kCreateIndex: {
      auto it = tables_by_id_.find(rec.table_id);
      if (it == tables_by_id_.end()) {
        return Status::Corruption("replay: create index on unknown table");
      }
      if (it->second->HasIndex(rec.index_column)) return Status::OK();
      return it->second->CreateIndex({rec.index_column, rec.index_unique});
    }
    case LogRecordType::kInsert: {
      auto it = tables_by_id_.find(rec.table_id);
      if (it == tables_by_id_.end()) return Status::OK();  // Table dropped.
      EDADB_ASSIGN_OR_RETURN(
          Record record, DecodeRow(it->second->schema(), rec.new_row));
      return it->second->ApplyInsert(rec.row_id, record).status();
    }
    case LogRecordType::kUpdate: {
      auto it = tables_by_id_.find(rec.table_id);
      if (it == tables_by_id_.end()) return Status::OK();
      EDADB_ASSIGN_OR_RETURN(
          Record record, DecodeRow(it->second->schema(), rec.new_row));
      return it->second->ApplyUpdate(rec.row_id, record);
    }
    case LogRecordType::kDelete: {
      auto it = tables_by_id_.find(rec.table_id);
      if (it == tables_by_id_.end()) return Status::OK();
      return it->second->ApplyDelete(rec.row_id);
    }
    default:
      return Status::Internal("unexpected log record in apply");
  }
}

// ---------------------------------------------------------------------------
// DDL

Result<Table*> Database::CreateTable(const std::string& name,
                                     SchemaPtr schema) {
  std::unique_lock lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  if (schema == nullptr || schema->num_fields() == 0) {
    return Status::InvalidArgument("table '" + name + "' needs fields");
  }
  const TableId id = next_table_id_++;
  LogRecord rec;
  rec.type = LogRecordType::kCreateTable;
  rec.table_id = id;
  rec.table_name = name;
  rec.schema_fields = schema->fields();
  EDADB_RETURN_IF_ERROR(
      wal_->Append(static_cast<uint8_t>(rec.type), rec.EncodePayload())
          .status());
  EDADB_RETURN_IF_ERROR(wal_->Sync());
  auto table = std::make_unique<Table>(id, name, std::move(schema));
  Table* raw = table.get();
  tables_by_id_.emplace(id, raw);
  tables_.emplace(name, std::move(table));
  return raw;
}

Status Database::DropTable(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  LogRecord rec;
  rec.type = LogRecordType::kDropTable;
  rec.table_id = it->second->id();
  rec.table_name = name;
  EDADB_RETURN_IF_ERROR(
      wal_->Append(static_cast<uint8_t>(rec.type), rec.EncodePayload())
          .status());
  EDADB_RETURN_IF_ERROR(wal_->Sync());
  tables_by_id_.erase(it->second->id());
  tables_.erase(it);
  // Drop triggers bound to the table.
  for (auto t = triggers_.begin(); t != triggers_.end();) {
    if (t->second.table == name) {
      t = triggers_.erase(t);
    } else {
      ++t;
    }
  }
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::shared_lock lock(mu_);
  return GetTableLocked(name);
}

Result<Table*> Database::GetTableLocked(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> Database::ListTables() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

const Table* Database::GetTableById(TableId id) const {
  std::shared_lock lock(mu_);
  auto it = tables_by_id_.find(id);
  return it == tables_by_id_.end() ? nullptr : it->second;
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column, bool unique) {
  std::unique_lock lock(mu_);
  EDADB_ASSIGN_OR_RETURN(Table * t, GetTableLocked(table));
  LogRecord rec;
  rec.type = LogRecordType::kCreateIndex;
  rec.table_id = t->id();
  rec.index_column = column;
  rec.index_unique = unique;
  EDADB_RETURN_IF_ERROR(t->CreateIndex({column, unique}));
  // The in-memory index is built first so backfill failures (e.g. a
  // unique violation in existing rows) never reach the WAL — but then a
  // failed append/sync must tear it back down, or the index would serve
  // queries now and silently vanish on the next reopen.
  Status logged =
      wal_->Append(static_cast<uint8_t>(rec.type), rec.EncodePayload())
          .status();
  if (logged.ok()) logged = wal_->Sync();
  if (!logged.ok()) {
    t->DropIndex(column);
    return logged;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Trigger firing

Status Database::FireTriggers(TriggerTiming timing, TriggerEvent* event) {
  // Snapshot matching triggers under the lock, fire without it so
  // actions may call back into this Database.
  std::vector<const TriggerDef*> to_fire;
  {
    std::shared_lock lock(mu_);
    for (const auto& [name, def] : triggers_) {
      if (!def.enabled || def.timing != timing ||
          def.table != event->table_name || (def.ops & event->op) == 0) {
        continue;
      }
      to_fire.push_back(&def);
    }
  }
  for (const TriggerDef* def : to_fire) {
    if (def->when.has_value()) {
      TriggerRowView view(*event);
      auto matches = def->when->Matches(view);
      if (!matches.ok()) {
        EDADB_LOG(Warn) << "trigger '" << def->name
                        << "' WHEN error: " << matches.status();
        continue;
      }
      if (!*matches) continue;
    }
    const Status s = def->action != nullptr ? def->action(*event)
                                            : Status::OK();
    if (!s.ok()) {
      if (timing == TriggerTiming::kBefore) {
        return Status::Aborted("trigger '" + def->name +
                               "' vetoed: " + s.ToString());
      }
      EDADB_LOG(Warn) << "AFTER trigger '" << def->name
                      << "' failed: " << s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Op preparation

Result<Database::PendingOp> Database::PrepareInsert(const std::string& table,
                                                    Record record) {
  TableId table_id;
  RowId row_id;
  {
    std::unique_lock lock(mu_);
    EDADB_ASSIGN_OR_RETURN(Table * t, GetTableLocked(table));
    EDADB_RETURN_IF_ERROR(t->CheckRecord(record));
    table_id = t->id();
    row_id = t->mutable_heap()->AllocateRowId();
  }
  TriggerEvent event;
  event.op = kDmlInsert;
  event.table_name = table;
  event.table_id = table_id;
  event.row_id = row_id;
  event.timestamp = clock_->NowMicros();
  event.new_row = &record;
  EDADB_RETURN_IF_ERROR(FireTriggers(TriggerTiming::kBefore, &event));
  PendingOp op;
  op.type = LogRecordType::kInsert;
  op.table_id = table_id;
  op.table_name = table;
  op.row_id = row_id;
  op.new_record = std::move(record);
  return op;
}

Result<Database::PendingOp> Database::PrepareUpdate(const std::string& table,
                                                    RowId row_id,
                                                    Record record) {
  TableId table_id;
  Record old_record;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
    EDADB_RETURN_IF_ERROR(it->second->CheckRecord(record));
    EDADB_ASSIGN_OR_RETURN(old_record, it->second->GetRow(row_id));
    table_id = it->second->id();
  }
  TriggerEvent event;
  event.op = kDmlUpdate;
  event.table_name = table;
  event.table_id = table_id;
  event.row_id = row_id;
  event.timestamp = clock_->NowMicros();
  event.old_row = &old_record;
  event.new_row = &record;
  EDADB_RETURN_IF_ERROR(FireTriggers(TriggerTiming::kBefore, &event));
  PendingOp op;
  op.type = LogRecordType::kUpdate;
  op.table_id = table_id;
  op.table_name = table;
  op.row_id = row_id;
  op.new_record = std::move(record);
  return op;
}

Result<Database::PendingOp> Database::PrepareDelete(const std::string& table,
                                                    RowId row_id) {
  TableId table_id;
  Record old_record;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
    EDADB_ASSIGN_OR_RETURN(old_record, it->second->GetRow(row_id));
    table_id = it->second->id();
  }
  TriggerEvent event;
  event.op = kDmlDelete;
  event.table_name = table;
  event.table_id = table_id;
  event.row_id = row_id;
  event.timestamp = clock_->NowMicros();
  event.old_row = &old_record;
  EDADB_RETURN_IF_ERROR(FireTriggers(TriggerTiming::kBefore, &event));
  PendingOp op;
  op.type = LogRecordType::kDelete;
  op.table_id = table_id;
  op.table_name = table;
  op.row_id = row_id;
  return op;
}

// ---------------------------------------------------------------------------
// Commit path

Status Database::ValidateOps(const std::vector<PendingOp>& ops) {
  // Per unique index, keys already claimed by earlier ops in this txn.
  std::map<std::pair<TableId, std::string>, std::set<std::string>> claimed;
  for (const PendingOp& op : ops) {
    auto it = tables_by_id_.find(op.table_id);
    if (it == tables_by_id_.end()) {
      return Status::NotFound("table id " + std::to_string(op.table_id) +
                              " (dropped mid-transaction?)");
    }
    Table* t = it->second;
    if (op.type == LogRecordType::kUpdate ||
        op.type == LogRecordType::kDelete) {
      if (t->heap().Get(op.row_id) == nullptr) {
        return Status::NotFound("row " + std::to_string(op.row_id) +
                                " vanished before commit");
      }
    }
    if (op.type == LogRecordType::kInsert ||
        op.type == LogRecordType::kUpdate) {
      EDADB_RETURN_IF_ERROR(t->CheckRecord(op.new_record));
      for (const IndexDef& def : t->index_defs()) {
        if (!def.unique) continue;
        auto v = op.new_record.Get(def.column);
        if (!v.ok() || v->is_null()) continue;
        const BTreeIndex* index = t->GetIndex(def.column);
        for (const RowId other : index->Lookup(*v)) {
          if (other != op.row_id) {
            return Status::AlreadyExists("unique index violation on '" +
                                         def.column + "'");
          }
        }
        std::string key;
        v->EncodeTo(&key);
        auto [slot, inserted] =
            claimed[{op.table_id, def.column}].insert(key);
        if (!inserted) {
          return Status::AlreadyExists(
              "unique index violation on '" + def.column +
              "' within one transaction");
        }
      }
    }
  }
  return Status::OK();
}

Status Database::CommitOps(std::vector<PendingOp> ops) {
  if (ops.empty()) return Status::OK();
  metrics::LatencyScope latency(CommitLatency());
  CommitOpsHistogram()->Record(ops.size());

  struct AfterEvent {
    DmlOp op;
    std::string table_name;
    TableId table_id;
    RowId row_id;
    Record old_record;
    bool has_old = false;
    Record new_record;
    bool has_new = false;
    TxnId txn_id;
  };
  std::vector<AfterEvent> after_events;
  after_events.reserve(ops.size());

  Lsn commit_end_lsn = 0;
  {
    std::unique_lock lock(mu_);
    EDADB_RETURN_IF_ERROR(ValidateOps(ops));
    FAILPOINT("db.commit.before_wal");
    const TxnId txn = next_txn_id_++;

    // Frame Begin plus every op as ONE WAL batch — one writer lock
    // round-trip and one file write for the whole transaction. The
    // commit record goes separately so the crash window "ops logged,
    // commit missing" (which recovery must discard) still exists.
    std::vector<uint8_t> wal_types;
    std::vector<std::string> wal_payloads;  // Stable buffers for the refs.
    wal_types.reserve(ops.size() + 1);
    wal_payloads.reserve(ops.size() + 1);

    LogRecord begin;
    begin.type = LogRecordType::kBeginTxn;
    begin.txn_id = txn;
    wal_types.push_back(static_cast<uint8_t>(begin.type));
    wal_payloads.push_back(begin.EncodePayload());

    for (PendingOp& op : ops) {
      Table* t = tables_by_id_.at(op.table_id);
      LogRecord rec;
      rec.type = op.type;
      rec.txn_id = txn;
      rec.table_id = op.table_id;
      rec.row_id = op.row_id;
      if (op.type == LogRecordType::kInsert ||
          op.type == LogRecordType::kUpdate) {
        EncodeRow(op.new_record, &rec.new_row);
      }
      if (op.type == LogRecordType::kUpdate ||
          op.type == LogRecordType::kDelete) {
        rec.old_row = *t->heap().Get(op.row_id);
      }
      wal_types.push_back(static_cast<uint8_t>(rec.type));
      wal_payloads.push_back(rec.EncodePayload());
    }
    std::vector<WalRecordRef> wal_batch;
    wal_batch.reserve(wal_payloads.size());
    for (size_t i = 0; i < wal_payloads.size(); ++i) {
      wal_batch.push_back({wal_types[i], wal_payloads[i]});
    }
    EDADB_RETURN_IF_ERROR(wal_->AppendBatch(wal_batch).status());

    // A crash before the commit record leaves Begin+ops without Commit:
    // recovery must discard the whole transaction.
    FAILPOINT("db.commit.after_ops");
    LogRecord commit;
    commit.type = LogRecordType::kCommitTxn;
    commit.txn_id = txn;
    const std::string commit_payload = commit.EncodePayload();
    const std::vector<WalRecordRef> commit_rec = {
        {static_cast<uint8_t>(commit.type), commit_payload}};
    EDADB_ASSIGN_OR_RETURN(const WalBatchResult commit_written,
                           wal_->AppendBatch(commit_rec));
    commit_end_lsn = commit_written.end_lsn;
    FAILPOINT("db.commit.before_sync");

    // Apply. ValidateOps vetted everything; failures here indicate a
    // programming error and poison the database state.
    for (PendingOp& op : ops) {
      Table* t = tables_by_id_.at(op.table_id);
      AfterEvent ev;
      ev.op = LogTypeToDmlOp(op.type);
      ev.table_name = op.table_name;
      ev.table_id = op.table_id;
      ev.row_id = op.row_id;
      ev.txn_id = txn;
      if (op.type != LogRecordType::kInsert) {
        auto old_rec = t->GetRow(op.row_id);
        if (old_rec.ok()) {
          ev.old_record = *std::move(old_rec);
          ev.has_old = true;
        }
      }
      Status s;
      switch (op.type) {
        case LogRecordType::kInsert:
          s = t->ApplyInsert(op.row_id, op.new_record).status();
          break;
        case LogRecordType::kUpdate:
          s = t->ApplyUpdate(op.row_id, op.new_record);
          break;
        case LogRecordType::kDelete:
          s = t->ApplyDelete(op.row_id);
          break;
        default:
          s = Status::Internal("unexpected op type");
      }
      if (!s.ok()) {
        return Status::Internal("commit apply failed after WAL write: " +
                                s.ToString());
      }
      if (op.type != LogRecordType::kDelete) {
        ev.new_record = std::move(op.new_record);
        ev.has_new = true;
      }
      after_events.push_back(std::move(ev));
    }
  }

  // Group commit: the durability barrier runs OUTSIDE the database
  // lock, so concurrent committers rendezvous in WalWriter::SyncTo and
  // share one fdatasync instead of paying one each (DESIGN.md §10).
  // Applied state is visible to readers a beat before it is durable;
  // an error here means durability is unknown, not that the commit was
  // rolled back.
  EDADB_RETURN_IF_ERROR(wal_->SyncTo(commit_end_lsn));
  // The commit record is on disk: a crash from here on must still
  // surface the transaction after recovery.
  FAILPOINT("db.commit.after_sync");
  CommitsCounter()->Add(1);

  // AFTER triggers observe committed state; errors are logged, not
  // propagated (the change is already durable).
  for (AfterEvent& ev : after_events) {
    TriggerEvent event;
    event.op = ev.op;
    event.table_name = ev.table_name;
    event.table_id = ev.table_id;
    event.row_id = ev.row_id;
    event.txn_id = ev.txn_id;
    event.timestamp = clock_->NowMicros();
    event.old_row = ev.has_old ? &ev.old_record : nullptr;
    event.new_row = ev.has_new ? &ev.new_record : nullptr;
    EDADB_IGNORE_STATUS(FireTriggers(TriggerTiming::kAfter, &event),
                        "AFTER-trigger failures are logged inside "
                        "FireTriggers; the commit is already durable");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Auto-commit DML

Result<RowId> Database::Insert(const std::string& table, Record record) {
  EDADB_ASSIGN_OR_RETURN(PendingOp op, PrepareInsert(table, std::move(record)));
  const RowId row_id = op.row_id;
  std::vector<PendingOp> ops;
  ops.push_back(std::move(op));
  EDADB_RETURN_IF_ERROR(CommitOps(std::move(ops)));
  return row_id;
}

Status Database::UpdateRow(const std::string& table, RowId row_id,
                           Record record) {
  EDADB_ASSIGN_OR_RETURN(PendingOp op,
                         PrepareUpdate(table, row_id, std::move(record)));
  std::vector<PendingOp> ops;
  ops.push_back(std::move(op));
  return CommitOps(std::move(ops));
}

Status Database::DeleteRow(const std::string& table, RowId row_id) {
  EDADB_ASSIGN_OR_RETURN(PendingOp op, PrepareDelete(table, row_id));
  std::vector<PendingOp> ops;
  ops.push_back(std::move(op));
  return CommitOps(std::move(ops));
}

Result<size_t> Database::UpdateWhere(
    const std::string& table, const Predicate& where,
    const std::function<Status(Record*)>& mutator) {
  // Collect matches under a shared lock, then update row by row.
  std::vector<std::pair<RowId, Record>> matches;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
    it->second->ScanRows([&](RowId row_id, const Record& record) {
      if (where.MatchesOrFalse(record)) matches.emplace_back(row_id, record);
      return true;
    });
  }
  size_t updated = 0;
  for (auto& [row_id, record] : matches) {
    EDADB_RETURN_IF_ERROR(mutator(&record));
    const Status s = UpdateRow(table, row_id, std::move(record));
    if (s.IsNotFound()) continue;  // Row deleted concurrently.
    EDADB_RETURN_IF_ERROR(s);
    ++updated;
  }
  return updated;
}

Result<size_t> Database::DeleteWhere(const std::string& table,
                                     const Predicate& where) {
  std::vector<RowId> matches;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
    it->second->ScanRows([&](RowId row_id, const Record& record) {
      if (where.MatchesOrFalse(record)) matches.push_back(row_id);
      return true;
    });
  }
  size_t deleted = 0;
  for (const RowId row_id : matches) {
    const Status s = DeleteRow(table, row_id);
    if (s.IsNotFound()) continue;
    EDADB_RETURN_IF_ERROR(s);
    ++deleted;
  }
  return deleted;
}

// ---------------------------------------------------------------------------
// Transactions

std::unique_ptr<Transaction> Database::BeginTransaction() {
  return std::unique_ptr<Transaction>(new Transaction(this));
}

Transaction::~Transaction() {
  if (!finished_) {
    EDADB_IGNORE_STATUS(Rollback(),
                        "destructor abandon; rollback only mutates in-memory "
                        "txn state and recovery discards unlogged writes");
  }
}

Result<RowId> Transaction::Insert(const std::string& table, Record record) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  EDADB_ASSIGN_OR_RETURN(Database::PendingOp op,
                         db_->PrepareInsert(table, std::move(record)));
  const RowId row_id = op.row_id;
  ops_.push_back(std::move(op));
  return row_id;
}

Status Transaction::UpdateRow(const std::string& table, RowId row_id,
                              Record record) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  EDADB_ASSIGN_OR_RETURN(Database::PendingOp op,
                         db_->PrepareUpdate(table, row_id, std::move(record)));
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::DeleteRow(const std::string& table, RowId row_id) {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  EDADB_ASSIGN_OR_RETURN(Database::PendingOp op,
                         db_->PrepareDelete(table, row_id));
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Commit() {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  finished_ = true;
  return db_->CommitOps(std::move(ops_));
}

Status Transaction::Rollback() {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  finished_ = true;
  ops_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries

Result<Record> Database::GetRow(const std::string& table,
                                RowId row_id) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
  return it->second->GetRow(row_id);
}

Result<size_t> Database::CountRows(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table '" + table + "'");
  return it->second->num_rows();
}

// ---------------------------------------------------------------------------
// Trigger admin

Status Database::CreateTrigger(TriggerDef def) {
  std::unique_lock lock(mu_);
  if (def.name.empty()) {
    return Status::InvalidArgument("trigger needs a name");
  }
  if (triggers_.count(def.name) > 0) {
    return Status::AlreadyExists("trigger '" + def.name + "' already exists");
  }
  if (tables_.count(def.table) == 0) {
    return Status::NotFound("table '" + def.table + "'");
  }
  if ((def.ops & (kDmlInsert | kDmlUpdate | kDmlDelete)) == 0) {
    return Status::InvalidArgument("trigger subscribes to no operations");
  }
  triggers_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status Database::DropTrigger(const std::string& name) {
  std::unique_lock lock(mu_);
  if (triggers_.erase(name) == 0) {
    return Status::NotFound("trigger '" + name + "'");
  }
  return Status::OK();
}

Status Database::SetTriggerEnabled(const std::string& name, bool enabled) {
  std::unique_lock lock(mu_);
  auto it = triggers_.find(name);
  if (it == triggers_.end()) {
    return Status::NotFound("trigger '" + name + "'");
  }
  it->second.enabled = enabled;
  return Status::OK();
}

std::vector<std::string> Database::ListTriggers() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(triggers_.size());
  for (const auto& [name, def] : triggers_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Checkpoint

Status Database::Checkpoint(Lsn retain_lsn) {
  std::unique_lock lock(mu_);
  Snapshot snap;
  snap.next_table_id = next_table_id_;
  snap.next_txn_id = next_txn_id_;
  for (const auto& [name, table] : tables_) {
    TableSnapshot ts;
    ts.id = table->id();
    ts.name = name;
    ts.fields = table->schema()->fields();
    ts.next_row_id = table->heap().next_row_id();
    ts.indexes = table->index_defs();
    table->heap().Scan([&](RowId row_id, const std::string& bytes) {
      ts.rows.emplace_back(row_id, bytes);
      return true;
    });
    snap.tables.push_back(std::move(ts));
  }
  const Lsn checkpoint_lsn = wal_->next_lsn();
  const std::string snapshot_file =
      StringPrintf("snapshot-%06" PRIu64 ".ckpt", ++checkpoint_seq_);
  FAILPOINT("db.checkpoint.before_snapshot");
  EDADB_RETURN_IF_ERROR(WriteStringToFile(
      options_.dir + "/" + snapshot_file, EncodeSnapshot(snap),
      /*sync=*/true));

  // Snapshot written but CHECKPOINT meta not yet switched: a crash here
  // must leave recovery on the previous snapshot + full WAL replay.
  FAILPOINT("db.checkpoint.before_meta");
  CheckpointMeta meta;
  meta.snapshot_file = snapshot_file;
  meta.replay_from_lsn = checkpoint_lsn;
  EDADB_RETURN_IF_ERROR(WriteStringToFile(
      options_.dir + "/" + kCheckpointFileName, EncodeCheckpointMeta(meta),
      /*sync=*/true));

  // Note the checkpoint in the journal, then prune old segments up to
  // the reader-safe point.
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.checkpoint_lsn = checkpoint_lsn;
  rec.snapshot_file = snapshot_file;
  EDADB_RETURN_IF_ERROR(
      wal_->Append(static_cast<uint8_t>(rec.type), rec.EncodePayload())
          .status());
  EDADB_RETURN_IF_ERROR(wal_->Sync());
  return wal_->TruncateBefore(std::min(retain_lsn, checkpoint_lsn));
}

Lsn Database::wal_end_lsn() const {
  std::shared_lock lock(mu_);
  return wal_->next_lsn();
}

std::string Database::wal_dir() const {
  return options_.wal_dir.empty() ? options_.dir + "/wal" : options_.wal_dir;
}

}  // namespace edadb
