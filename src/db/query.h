#ifndef EDADB_DB_QUERY_H_
#define EDADB_DB_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/ast.h"
#include "expr/predicate.h"
#include "value/record.h"
#include "value/schema.h"
#include "common/macros.h"

namespace edadb {

/// ORDER BY term.
struct OrderBy {
  std::string column;
  bool ascending = true;
};

/// Aggregate spec; column is ignored for kCount ("COUNT(*)").
struct Aggregate {
  enum class Func { kCount, kSum, kAvg, kMin, kMax };
  Func func = Func::kCount;
  std::string column;
  std::string alias;

  static std::string_view FuncName(Func f);
};

/// A programmatic SELECT over one table:
///   SELECT <select | aggregates> FROM <table>
///   [WHERE <where>] [GROUP BY <group_by>] [ORDER BY ...] [LIMIT n]
///
/// The Database's planner uses a secondary index when `where` contains
/// an indexable conjunct (col = literal, col <op> literal, or
/// col BETWEEN a AND b on an indexed column); otherwise it scans.
struct Query {
  std::string table;
  std::vector<std::string> select;  // Empty = all columns.
  ExprPtr where;                    // Null = no filter.
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  std::vector<OrderBy> order_by;
  uint64_t limit = UINT64_MAX;

  /// Set by QueryBuilder::Where(text) on a parse failure; Execute
  /// surfaces it instead of running.
  Status build_error;

  /// Convenience: sets `where` from expression text.
  EDADB_NODISCARD Status SetWhere(std::string_view expr_source);
};

/// Materialized query output.
struct QueryResult {
  SchemaPtr schema;
  std::vector<Record> rows;

  std::string ToString() const;
};

/// Fluent builder for Query.
class QueryBuilder {
 public:
  explicit QueryBuilder(std::string table) { query_.table = std::move(table); }

  QueryBuilder& Select(std::vector<std::string> columns) {
    query_.select = std::move(columns);
    return *this;
  }
  QueryBuilder& Where(ExprPtr expr) {
    query_.where = std::move(expr);
    return *this;
  }
  /// Parses `source`; invalid expressions surface when the query runs.
  QueryBuilder& Where(std::string_view source);
  QueryBuilder& GroupBy(std::vector<std::string> columns) {
    query_.group_by = std::move(columns);
    return *this;
  }
  QueryBuilder& Count(std::string alias = "count");
  QueryBuilder& Sum(std::string column, std::string alias = "");
  QueryBuilder& Avg(std::string column, std::string alias = "");
  QueryBuilder& Min(std::string column, std::string alias = "");
  QueryBuilder& Max(std::string column, std::string alias = "");
  QueryBuilder& OrderByAsc(std::string column) {
    query_.order_by.push_back({std::move(column), true});
    return *this;
  }
  QueryBuilder& OrderByDesc(std::string column) {
    query_.order_by.push_back({std::move(column), false});
    return *this;
  }
  QueryBuilder& Limit(uint64_t n) {
    query_.limit = n;
    return *this;
  }

  Query Build() { return std::move(query_); }

 private:
  Query query_;
};

}  // namespace edadb

#endif  // EDADB_DB_QUERY_H_
