#include "db/resultset_diff.h"

#include <map>

namespace edadb {

std::string_view RowChangeKindToString(RowChangeKind kind) {
  switch (kind) {
    case RowChangeKind::kAdded: return "ADDED";
    case RowChangeKind::kRemoved: return "REMOVED";
    case RowChangeKind::kModified: return "MODIFIED";
  }
  return "?";
}

std::string RowChange::ToString() const {
  std::string out(RowChangeKindToString(kind));
  if (before.has_value()) out += " before=" + before->ToString();
  if (after.has_value()) out += " after=" + after->ToString();
  return out;
}

namespace {

Result<std::string> MakeKey(const Record& record,
                            const std::vector<std::string>& key_columns) {
  std::string key;
  if (key_columns.empty()) {
    for (size_t i = 0; i < record.num_values(); ++i) {
      record.value(i).EncodeTo(&key);
    }
    return key;
  }
  for (const std::string& col : key_columns) {
    EDADB_ASSIGN_OR_RETURN(Value v, record.Get(col));
    v.EncodeTo(&key);
  }
  return key;
}

Result<std::map<std::string, const Record*>> IndexRows(
    const QueryResult& result, const std::vector<std::string>& key_columns,
    bool allow_duplicates) {
  std::map<std::string, const Record*> index;
  for (const Record& row : result.rows) {
    EDADB_ASSIGN_OR_RETURN(std::string key, MakeKey(row, key_columns));
    auto [it, inserted] = index.emplace(std::move(key), &row);
    if (!inserted && !allow_duplicates) {
      return Status::InvalidArgument(
          "duplicate key in result set: " + row.ToString());
    }
  }
  return index;
}

}  // namespace

Result<std::vector<RowChange>> DiffResultSets(
    const QueryResult& previous, const QueryResult& current,
    const std::vector<std::string>& key_columns) {
  // Whole-row identity tolerates duplicates (a multiset diff would be
  // overkill; the first instance wins).
  const bool whole_row = key_columns.empty();
  EDADB_ASSIGN_OR_RETURN(auto prev_index,
                         IndexRows(previous, key_columns, whole_row));
  EDADB_ASSIGN_OR_RETURN(auto cur_index,
                         IndexRows(current, key_columns, whole_row));

  std::vector<RowChange> changes;
  for (const auto& [key, prev_row] : prev_index) {
    auto it = cur_index.find(key);
    if (it == cur_index.end()) {
      RowChange change;
      change.kind = RowChangeKind::kRemoved;
      change.before = *prev_row;
      changes.push_back(std::move(change));
    } else if (!whole_row && !(*prev_row == *it->second)) {
      RowChange change;
      change.kind = RowChangeKind::kModified;
      change.before = *prev_row;
      change.after = *it->second;
      changes.push_back(std::move(change));
    }
  }
  for (const auto& [key, cur_row] : cur_index) {
    if (prev_index.find(key) == prev_index.end()) {
      RowChange change;
      change.kind = RowChangeKind::kAdded;
      change.after = *cur_row;
      changes.push_back(std::move(change));
    }
  }
  return changes;
}

}  // namespace edadb
