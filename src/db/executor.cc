// Query execution for Database::Execute: a scan-or-index-scan planner,
// residual filtering, grouping/aggregation, ordering and projection.

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "db/database.h"
#include "db/query.h"

namespace edadb {

namespace {

/// Flattens an AND tree into its conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == BinaryOp::kAnd) {
      CollectConjuncts(bin.left(), out);
      CollectConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

/// A single-column range usable with a B+tree index.
struct IndexBound {
  std::string column;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;
};

/// Recognizes `col <cmp> literal`, `literal <cmp> col`, and
/// `col BETWEEN lit AND lit`.
std::optional<IndexBound> ExtractBound(const Expr& expr) {
  if (expr.kind() == ExprKind::kBetween) {
    const auto& between = static_cast<const BetweenExpr&>(expr);
    if (between.negated()) return std::nullopt;
    if (between.operand()->kind() != ExprKind::kColumn ||
        between.low()->kind() != ExprKind::kLiteral ||
        between.high()->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    IndexBound bound;
    bound.column =
        static_cast<const ColumnExpr&>(*between.operand()).name();
    bound.lo = static_cast<const LiteralExpr&>(*between.low()).value();
    bound.hi = static_cast<const LiteralExpr&>(*between.high()).value();
    return bound;
  }
  if (expr.kind() != ExprKind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const BinaryExpr&>(expr);
  BinaryOp op = bin.op();
  const Expr* col = bin.left().get();
  const Expr* lit = bin.right().get();
  if (col->kind() == ExprKind::kLiteral && lit->kind() == ExprKind::kColumn) {
    std::swap(col, lit);
    // Mirror the comparison: 5 < x  ==  x > 5.
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (col->kind() != ExprKind::kColumn || lit->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  const Value& v = static_cast<const LiteralExpr&>(*lit).value();
  if (v.is_null()) return std::nullopt;
  IndexBound bound;
  bound.column = static_cast<const ColumnExpr&>(*col).name();
  switch (op) {
    case BinaryOp::kEq:
      bound.lo = v;
      bound.hi = v;
      return bound;
    case BinaryOp::kLt:
      bound.hi = v;
      bound.hi_inclusive = false;
      return bound;
    case BinaryOp::kLe:
      bound.hi = v;
      return bound;
    case BinaryOp::kGt:
      bound.lo = v;
      bound.lo_inclusive = false;
      return bound;
    case BinaryOp::kGe:
      bound.lo = v;
      return bound;
    default:
      return std::nullopt;
  }
}

/// Per-aggregate accumulator.
struct Accumulator {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool all_int = true;
  Value min_value;
  Value max_value;
  bool has_extreme = false;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.type() == ValueType::kInt64) {
      int_sum += v.int64_value();
      double_sum += static_cast<double>(v.int64_value());
    } else {
      auto d = v.AsDouble();
      if (d.ok()) double_sum += *d;
      all_int = false;
    }
    if (!has_extreme) {
      min_value = v;
      max_value = v;
      has_extreme = true;
    } else {
      if (Value::CompareTotalOrder(v, min_value) < 0) min_value = v;
      if (Value::CompareTotalOrder(v, max_value) > 0) max_value = v;
    }
  }
};

Value FinishAggregate(const Aggregate& agg, const Accumulator& acc,
                      int64_t group_rows) {
  switch (agg.func) {
    case Aggregate::Func::kCount:
      return Value::Int64(agg.column.empty() ? group_rows : acc.count);
    case Aggregate::Func::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.all_int ? Value::Int64(acc.int_sum)
                         : Value::Double(acc.double_sum);
    case Aggregate::Func::kAvg:
      if (acc.count == 0) return Value::Null();
      return Value::Double(acc.double_sum /
                           static_cast<double>(acc.count));
    case Aggregate::Func::kMin:
      return acc.has_extreme ? acc.min_value : Value::Null();
    case Aggregate::Func::kMax:
      return acc.has_extreme ? acc.max_value : Value::Null();
  }
  return Value::Null();
}

ValueType AggregateResultType(const Aggregate& agg, const Schema& schema) {
  switch (agg.func) {
    case Aggregate::Func::kCount:
      return ValueType::kInt64;
    case Aggregate::Func::kAvg:
      return ValueType::kDouble;
    case Aggregate::Func::kSum: {
      auto t = schema.FieldType(agg.column);
      return t.ok() && *t == ValueType::kInt64 ? ValueType::kInt64
                                               : ValueType::kDouble;
    }
    case Aggregate::Func::kMin:
    case Aggregate::Func::kMax: {
      auto t = schema.FieldType(agg.column);
      return t.ok() ? *t : ValueType::kNull;
    }
  }
  return ValueType::kNull;
}

Status SortRecords(std::vector<Record>* rows,
                   const std::vector<OrderBy>& order_by) {
  for (const OrderBy& term : order_by) {
    if (!rows->empty() &&
        (*rows)[0].schema()->FieldIndex(term.column) < 0) {
      return Status::NotFound("ORDER BY column '" + term.column + "'");
    }
  }
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const Record& a, const Record& b) {
                     for (const OrderBy& term : order_by) {
                       const int idx = a.schema()->FieldIndex(term.column);
                       const int c = Value::CompareTotalOrder(
                           a.value(static_cast<size_t>(idx)),
                           b.value(static_cast<size_t>(idx)));
                       if (c != 0) return term.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

/// Runs the scan + filter and returns matching rows (table schema).
Result<std::vector<Record>> CollectMatching(const Table& table,
                                            const Query& query,
                                            Clock* clock) {
  std::vector<Record> rows;
  EvalContext ctx;
  ctx.clock = clock;
  ctx.missing_attribute_is_null = false;

  // Bind-time validation: every referenced column must exist, so a typo
  // fails deterministically instead of only when a row is scanned.
  if (query.where != nullptr) {
    std::set<std::string> columns;
    query.where->CollectColumns(&columns);
    for (const std::string& column : columns) {
      if (!table.schema()->HasField(column)) {
        return Status::NotFound("WHERE column '" + column + "'");
      }
    }
  }

  // Pick an indexable conjunct, if any.
  const BTreeIndex* index = nullptr;
  IndexBound bound;
  if (query.where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(query.where, &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      auto candidate = ExtractBound(*conjunct);
      if (!candidate.has_value()) continue;
      const BTreeIndex* idx = table.GetIndex(candidate->column);
      if (idx == nullptr) continue;
      index = idx;
      bound = *std::move(candidate);
      break;
    }
  }

  Status eval_error;
  auto consider = [&](const Record& record) {
    if (query.where != nullptr) {
      ctx.row = &record;
      auto matched = query.where->Matches(ctx);
      if (!matched.ok()) {
        eval_error = matched.status();
        return false;
      }
      if (!*matched) return true;
    }
    rows.push_back(record);
    return true;
  };

  if (index != nullptr) {
    index->Scan(bound.lo, bound.lo_inclusive, bound.hi, bound.hi_inclusive,
                [&](const Value&, RowId row_id) {
                  auto record = table.GetRow(row_id);
                  if (!record.ok()) return true;
                  return consider(*record);
                });
  } else {
    table.ScanRows([&](RowId, const Record& record) {
      return consider(record);
    });
  }
  EDADB_RETURN_IF_ERROR(eval_error);
  return rows;
}

Result<QueryResult> Aggregate_(const Table& table, const Query& query,
                               std::vector<Record> input) {
  // Output schema: group-by columns then aggregate aliases.
  std::vector<Field> fields;
  for (const std::string& col : query.group_by) {
    EDADB_ASSIGN_OR_RETURN(ValueType type, table.schema()->FieldType(col));
    fields.emplace_back(col, type);
  }
  for (const Aggregate& agg : query.aggregates) {
    if (agg.func != Aggregate::Func::kCount) {
      if (table.schema()->FieldIndex(agg.column) < 0) {
        return Status::NotFound("aggregate column '" + agg.column + "'");
      }
    }
    fields.emplace_back(
        agg.alias.empty()
            ? std::string(Aggregate::FuncName(agg.func))
            : agg.alias,
        AggregateResultType(agg, *table.schema()));
  }
  SchemaPtr out_schema = Schema::Make(std::move(fields));

  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
    int64_t rows = 0;
  };
  std::unordered_map<std::string, size_t> group_index;
  std::vector<Group> groups;

  for (const Record& record : input) {
    std::string key;
    std::vector<Value> key_values;
    for (const std::string& col : query.group_by) {
      EDADB_ASSIGN_OR_RETURN(Value v, record.Get(col));
      v.EncodeTo(&key);
      key_values.push_back(std::move(v));
    }
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      Group g;
      g.keys = std::move(key_values);
      g.accs.resize(query.aggregates.size());
      groups.push_back(std::move(g));
    }
    Group& group = groups[it->second];
    ++group.rows;
    for (size_t i = 0; i < query.aggregates.size(); ++i) {
      const Aggregate& agg = query.aggregates[i];
      if (agg.func == Aggregate::Func::kCount && agg.column.empty()) {
        continue;  // Row count handled by group.rows.
      }
      EDADB_ASSIGN_OR_RETURN(Value v, record.Get(agg.column));
      group.accs[i].Add(v);
    }
  }

  // SQL: aggregates with no GROUP BY produce one row even on no input.
  if (groups.empty() && query.group_by.empty()) {
    Group g;
    g.accs.resize(query.aggregates.size());
    groups.push_back(std::move(g));
  }

  QueryResult result;
  result.schema = out_schema;
  result.rows.reserve(groups.size());
  for (const Group& group : groups) {
    std::vector<Value> values = group.keys;
    for (size_t i = 0; i < query.aggregates.size(); ++i) {
      values.push_back(
          FinishAggregate(query.aggregates[i], group.accs[i], group.rows));
    }
    result.rows.emplace_back(out_schema, std::move(values));
  }
  return result;
}

Result<QueryResult> Project(const Table& table, const Query& query,
                            std::vector<Record> input) {
  if (query.select.empty()) {
    QueryResult result;
    result.schema = table.schema();
    result.rows = std::move(input);
    return result;
  }
  std::vector<Field> fields;
  std::vector<int> source_idx;
  for (const std::string& col : query.select) {
    const int idx = table.schema()->FieldIndex(col);
    if (idx < 0) return Status::NotFound("SELECT column '" + col + "'");
    fields.push_back(table.schema()->field(static_cast<size_t>(idx)));
    source_idx.push_back(idx);
  }
  SchemaPtr out_schema = Schema::Make(std::move(fields));
  QueryResult result;
  result.schema = out_schema;
  result.rows.reserve(input.size());
  for (const Record& record : input) {
    std::vector<Value> values;
    values.reserve(source_idx.size());
    for (const int idx : source_idx) {
      values.push_back(record.value(static_cast<size_t>(idx)));
    }
    result.rows.emplace_back(out_schema, std::move(values));
  }
  return result;
}

}  // namespace

Result<std::string> Database::Explain(const Query& query) const {
  EDADB_RETURN_IF_ERROR(query.build_error);
  std::shared_lock lock(mu_);
  auto it = tables_.find(query.table);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + query.table + "'");
  }
  const Table& table = *it->second;
  if (query.where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(query.where, &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      auto bound = ExtractBound(*conjunct);
      if (!bound.has_value()) continue;
      if (table.GetIndex(bound->column) == nullptr) continue;
      std::string out = "index scan on " + query.table + "." +
                        bound->column + " ";
      out += bound->lo.has_value()
                 ? (bound->lo_inclusive ? "[" : "(") + bound->lo->ToString()
                 : "(-inf";
      out += ", ";
      out += bound->hi.has_value()
                 ? bound->hi->ToString() + (bound->hi_inclusive ? "]" : ")")
                 : "+inf)";
      if (conjuncts.size() > 1) out += " + residual filter";
      return out;
    }
  }
  std::string out = "full scan of " + query.table + " (" +
                    std::to_string(table.num_rows()) + " rows)";
  if (query.where != nullptr) out += " + filter";
  return out;
}

Result<QueryResult> Database::Execute(const Query& query) const {
  EDADB_RETURN_IF_ERROR(query.build_error);
  std::shared_lock lock(mu_);
  auto it = tables_.find(query.table);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + query.table + "'");
  }
  const Table& table = *it->second;

  EDADB_ASSIGN_OR_RETURN(std::vector<Record> rows,
                         CollectMatching(table, query, clock_));

  QueryResult result;
  if (!query.aggregates.empty() || !query.group_by.empty()) {
    if (query.aggregates.empty()) {
      return Status::InvalidArgument("GROUP BY requires aggregates");
    }
    EDADB_ASSIGN_OR_RETURN(result,
                           Aggregate_(table, query, std::move(rows)));
    if (!query.order_by.empty()) {
      EDADB_RETURN_IF_ERROR(SortRecords(&result.rows, query.order_by));
    }
  } else {
    if (!query.order_by.empty()) {
      EDADB_RETURN_IF_ERROR(SortRecords(&rows, query.order_by));
    }
    EDADB_ASSIGN_OR_RETURN(result, Project(table, query, std::move(rows)));
  }
  if (result.rows.size() > query.limit) {
    result.rows.resize(query.limit);
  }
  return result;
}

}  // namespace edadb
