#ifndef EDADB_DB_RESULTSET_DIFF_H_
#define EDADB_DB_RESULTSET_DIFF_H_

#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "db/query.h"

namespace edadb {

/// §2.2.a.iii: "if queries reference the current state the change of the
/// result set is perceived as an event". DiffResultSets compares two
/// materializations of the same query and emits one change per row.
enum class RowChangeKind { kAdded, kRemoved, kModified };

std::string_view RowChangeKindToString(RowChangeKind kind);

struct RowChange {
  RowChangeKind kind = RowChangeKind::kAdded;
  std::optional<Record> before;  // kRemoved / kModified.
  std::optional<Record> after;   // kAdded / kModified.

  std::string ToString() const;
};

/// Diffs `previous` → `current`. Rows are matched by `key_columns`
/// (which must exist in both result schemas); with an empty key list the
/// whole row is the identity, so only kAdded/kRemoved are produced.
/// Duplicate keys within one result set are InvalidArgument.
EDADB_NODISCARD Result<std::vector<RowChange>> DiffResultSets(
    const QueryResult& previous, const QueryResult& current,
    const std::vector<std::string>& key_columns);

}  // namespace edadb

#endif  // EDADB_DB_RESULTSET_DIFF_H_
