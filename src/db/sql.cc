#include "db/sql.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "expr/lexer.h"
#include "expr/parser.h"

namespace edadb {

namespace {

/// Cursor over the statement's token stream. SQL keywords arrive from
/// the expression lexer as ordinary identifiers and are matched
/// case-insensitively by text.
class StatementParser {
 public:
  StatementParser(Database* db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  Result<SqlResult> Parse() {
    if (MatchKeyword("SELECT")) return Select();
    if (MatchKeyword("INSERT")) return Insert();
    if (MatchKeyword("UPDATE")) return Update();
    if (MatchKeyword("DELETE")) return Delete();
    if (MatchKeyword("CREATE")) {
      if (MatchKeyword("TABLE")) return CreateTable();
      const bool unique = MatchKeyword("UNIQUE");
      if (MatchKeyword("INDEX")) return CreateIndex(unique);
      return Error("expected TABLE or [UNIQUE] INDEX after CREATE");
    }
    if (MatchKeyword("DROP")) {
      if (!MatchKeyword("TABLE")) return Error("expected TABLE after DROP");
      EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
      EDADB_RETURN_IF_ERROR(ExpectEnd());
      EDADB_RETURN_IF_ERROR(db_->DropTable(table));
      SqlResult result;
      result.kind = SqlResult::Kind::kDdl;
      return result;
    }
    return Error("expected SELECT, INSERT, UPDATE, DELETE, CREATE or DROP");
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(std::string_view word) const {
    return Peek().kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(Peek().text, word);
  }

  bool MatchKeyword(std::string_view word) {
    if (PeekKeyword(word)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().position));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Match(kind)) return Status::OK();
    return Error(std::string("expected ") + what);
  }

  Status ExpectKeyword(std::string_view word) {
    if (MatchKeyword(word)) return Status::OK();
    return Error("expected " + std::string(word));
  }

  Status ExpectEnd() {
    if (Peek().kind == TokenKind::kEnd) return Status::OK();
    return Error("unexpected trailing tokens");
  }

  Result<std::string> Identifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return tokens_[pos_++].text;
  }

  Result<ExprPtr> Expression() {
    return ParseExpressionPrefix(tokens_, &pos_);
  }

  /// Evaluates a constant expression (INSERT values).
  Result<Value> ConstantValue() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr expr, Expression());
    EvalContext ctx;
    ctx.clock = db_->clock();
    // No row bound: column references fail, which is the right error
    // for INSERT values.
    return expr->Evaluate(ctx);
  }

  // -------------------------------------------------------------------
  // CREATE TABLE / INDEX

  Result<SqlResult> CreateTable() {
    EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    EDADB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    std::vector<Field> fields;
    for (;;) {
      EDADB_ASSIGN_OR_RETURN(std::string column, Identifier("column name"));
      EDADB_ASSIGN_OR_RETURN(ValueType type, ColumnType());
      bool nullable = true;
      if (Match(TokenKind::kNot)) {
        if (!Match(TokenKind::kNull)) {
          return Error("expected NULL after NOT");
        }
        nullable = false;
      }
      fields.emplace_back(std::move(column), type, nullable);
      if (!Match(TokenKind::kComma)) break;
    }
    EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    EDADB_RETURN_IF_ERROR(ExpectEnd());
    EDADB_RETURN_IF_ERROR(
        db_->CreateTable(table, Schema::Make(std::move(fields))).status());
    SqlResult result;
    result.kind = SqlResult::Kind::kDdl;
    return result;
  }

  Result<ValueType> ColumnType() {
    EDADB_ASSIGN_OR_RETURN(std::string name, Identifier("column type"));
    const std::string upper = ToUpper(name);
    if (upper == "BOOL" || upper == "BOOLEAN") return ValueType::kBool;
    if (upper == "INT64" || upper == "INTEGER" || upper == "INT") {
      return ValueType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "REAL" || upper == "FLOAT") {
      return ValueType::kDouble;
    }
    if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR") {
      return ValueType::kString;
    }
    if (upper == "TIMESTAMP") return ValueType::kTimestamp;
    return Status::InvalidArgument("unknown column type '" + name + "'");
  }

  Result<SqlResult> CreateIndex(bool unique) {
    EDADB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    EDADB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    EDADB_ASSIGN_OR_RETURN(std::string column, Identifier("column name"));
    EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    EDADB_RETURN_IF_ERROR(ExpectEnd());
    EDADB_RETURN_IF_ERROR(db_->CreateIndex(table, column, unique));
    SqlResult result;
    result.kind = SqlResult::Kind::kDdl;
    return result;
  }

  // -------------------------------------------------------------------
  // INSERT

  Result<SqlResult> Insert() {
    EDADB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    EDADB_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
    const SchemaPtr& schema = t->schema();

    std::vector<int> target_columns;  // Schema indexes, in VALUES order.
    if (Match(TokenKind::kLParen)) {
      for (;;) {
        EDADB_ASSIGN_OR_RETURN(std::string column,
                               Identifier("column name"));
        const int idx = schema->FieldIndex(column);
        if (idx < 0) {
          return Status::NotFound("no column '" + column + "' in table " +
                                  table);
        }
        target_columns.push_back(idx);
        if (!Match(TokenKind::kComma)) break;
      }
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    } else {
      for (size_t i = 0; i < schema->num_fields(); ++i) {
        target_columns.push_back(static_cast<int>(i));
      }
    }

    EDADB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    SqlResult result;
    result.kind = SqlResult::Kind::kInsert;
    auto txn = db_->BeginTransaction();
    for (;;) {
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      std::vector<Value> row_values(schema->num_fields());
      for (size_t i = 0; i < target_columns.size(); ++i) {
        if (i > 0) EDADB_RETURN_IF_ERROR(Expect(TokenKind::kComma, ","));
        EDADB_ASSIGN_OR_RETURN(Value v, ConstantValue());
        const size_t field = static_cast<size_t>(target_columns[i]);
        EDADB_ASSIGN_OR_RETURN(
            row_values[field],
            CoerceValue(std::move(v), schema->field(field).type));
      }
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      EDADB_RETURN_IF_ERROR(
          txn->Insert(table, Record(schema, std::move(row_values)))
              .status());
      ++result.rows_affected;
      if (!Match(TokenKind::kComma)) break;
    }
    EDADB_RETURN_IF_ERROR(ExpectEnd());
    EDADB_RETURN_IF_ERROR(txn->Commit());
    return result;
  }

  /// Lenient literal coercion so `VALUES (1)` fits a DOUBLE or
  /// TIMESTAMP column, as every SQL implementation allows.
  static Result<Value> CoerceValue(Value v, ValueType target) {
    if (v.is_null() || v.type() == target) return v;
    if (target == ValueType::kDouble && v.type() == ValueType::kInt64) {
      return Value::Double(static_cast<double>(v.int64_value()));
    }
    if (target == ValueType::kTimestamp && v.type() == ValueType::kInt64) {
      return Value::Timestamp(v.int64_value());
    }
    if (target == ValueType::kInt64 && v.type() == ValueType::kDouble) {
      EDADB_ASSIGN_OR_RETURN(int64_t i, v.AsInt64());
      return Value::Int64(i);
    }
    return v;  // Let Record::Validate report real mismatches.
  }

  // -------------------------------------------------------------------
  // SELECT

  Result<SqlResult> Select() {
    Query query;
    std::vector<std::string> plain_items;
    bool star = false;
    if (Match(TokenKind::kStar)) {
      star = true;
    } else {
      for (;;) {
        EDADB_RETURN_IF_ERROR(SelectItem(&query, &plain_items));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    EDADB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    EDADB_ASSIGN_OR_RETURN(query.table, Identifier("table name"));

    if (MatchKeyword("WHERE")) {
      EDADB_ASSIGN_OR_RETURN(query.where, Expression());
    }
    if (MatchKeyword("GROUP")) {
      EDADB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        EDADB_ASSIGN_OR_RETURN(std::string column,
                               Identifier("GROUP BY column"));
        query.group_by.push_back(std::move(column));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    if (MatchKeyword("ORDER")) {
      EDADB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderBy term;
        EDADB_ASSIGN_OR_RETURN(term.column, Identifier("ORDER BY column"));
        if (MatchKeyword("DESC")) {
          term.ascending = false;
        } else {
          MatchKeyword("ASC");  // optional keyword, default order
        }
        query.order_by.push_back(std::move(term));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral || Peek().int_value < 0) {
        return Error("expected a non-negative integer after LIMIT");
      }
      query.limit = static_cast<uint64_t>(tokens_[pos_++].int_value);
    }
    EDADB_RETURN_IF_ERROR(ExpectEnd());

    if (!query.aggregates.empty()) {
      // Plain items must be grouping columns (standard SQL restriction);
      // the executor emits group keys first, so they are present.
      for (const std::string& item : plain_items) {
        if (std::find(query.group_by.begin(), query.group_by.end(), item) ==
            query.group_by.end()) {
          return Status::InvalidArgument(
              "column '" + item +
              "' must appear in GROUP BY when aggregates are used");
        }
      }
    } else {
      if (!star) query.select = std::move(plain_items);
    }

    SqlResult result;
    result.kind = SqlResult::Kind::kSelect;
    EDADB_ASSIGN_OR_RETURN(result.result, db_->Execute(query));
    return result;
  }

  Result<Aggregate::Func> AggregateFunc(const std::string& upper) {
    if (upper == "COUNT") return Aggregate::Func::kCount;
    if (upper == "SUM") return Aggregate::Func::kSum;
    if (upper == "AVG") return Aggregate::Func::kAvg;
    if (upper == "MIN") return Aggregate::Func::kMin;
    if (upper == "MAX") return Aggregate::Func::kMax;
    return Status::NotFound("not an aggregate");
  }

  Status SelectItem(Query* query, std::vector<std::string>* plain_items) {
    EDADB_ASSIGN_OR_RETURN(std::string name, Identifier("select item"));
    const std::string upper = ToUpper(name);
    auto func = AggregateFunc(upper);
    if (func.ok() && Peek().kind == TokenKind::kLParen) {
      ++pos_;  // '('
      Aggregate aggregate;
      aggregate.func = *func;
      if (Match(TokenKind::kStar)) {
        if (*func != Aggregate::Func::kCount) {
          return Error("only COUNT accepts *");
        }
      } else {
        EDADB_ASSIGN_OR_RETURN(aggregate.column,
                               Identifier("aggregate column"));
      }
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      if (MatchKeyword("AS")) {
        EDADB_ASSIGN_OR_RETURN(aggregate.alias, Identifier("alias"));
      } else {
        aggregate.alias =
            aggregate.column.empty()
                ? ToLower(upper)
                : ToLower(upper) + "_" + aggregate.column;
      }
      query->aggregates.push_back(std::move(aggregate));
      return Status::OK();
    }
    if (MatchKeyword("AS")) {
      return Error("AS aliases are only supported on aggregates");
    }
    plain_items->push_back(std::move(name));
    return Status::OK();
  }

  // -------------------------------------------------------------------
  // UPDATE / DELETE

  Result<SqlResult> Update() {
    EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    EDADB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    std::vector<std::pair<std::string, ExprPtr>> assignments;
    for (;;) {
      EDADB_ASSIGN_OR_RETURN(std::string column, Identifier("column name"));
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "="));
      EDADB_ASSIGN_OR_RETURN(ExprPtr value, Expression());
      assignments.emplace_back(std::move(column), std::move(value));
      if (!Match(TokenKind::kComma)) break;
    }
    Predicate where;
    if (MatchKeyword("WHERE")) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr expr, Expression());
      where = Predicate::FromExpr(std::move(expr));
    } else {
      EDADB_ASSIGN_OR_RETURN(where, Predicate::Compile("TRUE"));
    }
    EDADB_RETURN_IF_ERROR(ExpectEnd());

    EDADB_ASSIGN_OR_RETURN(Table * t, db_->GetTable(table));
    const SchemaPtr schema = t->schema();
    for (const auto& [column, expr] : assignments) {
      if (schema->FieldIndex(column) < 0) {
        return Status::NotFound("no column '" + column + "' in table " +
                                table);
      }
    }
    Clock* clock = db_->clock();
    EDADB_ASSIGN_OR_RETURN(
        size_t updated,
        db_->UpdateWhere(
            table, where, [&](Record* row) -> Status {
              // Evaluate every assignment against the pre-update row.
              std::vector<Value> new_values;
              new_values.reserve(assignments.size());
              for (const auto& [column, expr] : assignments) {
                EvalContext ctx(row);
                ctx.clock = clock;
                ctx.missing_attribute_is_null = false;
                EDADB_ASSIGN_OR_RETURN(Value v, expr->Evaluate(ctx));
                const int idx = schema->FieldIndex(column);
                EDADB_ASSIGN_OR_RETURN(
                    v, CoerceValue(std::move(v),
                                   schema->field(static_cast<size_t>(idx))
                                       .type));
                new_values.push_back(std::move(v));
              }
              for (size_t i = 0; i < assignments.size(); ++i) {
                EDADB_RETURN_IF_ERROR(row->Set(assignments[i].first,
                                               std::move(new_values[i])));
              }
              return Status::OK();
            }));
    SqlResult result;
    result.kind = SqlResult::Kind::kUpdate;
    result.rows_affected = updated;
    return result;
  }

  Result<SqlResult> Delete() {
    EDADB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    EDADB_ASSIGN_OR_RETURN(std::string table, Identifier("table name"));
    Predicate where;
    if (MatchKeyword("WHERE")) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr expr, Expression());
      where = Predicate::FromExpr(std::move(expr));
    } else {
      EDADB_ASSIGN_OR_RETURN(where, Predicate::Compile("TRUE"));
    }
    EDADB_RETURN_IF_ERROR(ExpectEnd());
    EDADB_ASSIGN_OR_RETURN(size_t deleted, db_->DeleteWhere(table, where));
    SqlResult result;
    result.kind = SqlResult::Kind::kDelete;
    result.rows_affected = deleted;
    return result;
  }

  Database* db_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlResult> ExecuteSql(Database* db, std::string_view sql) {
  EDADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  StatementParser parser(db, std::move(tokens));
  return parser.Parse();
}

}  // namespace edadb
