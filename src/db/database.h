#ifndef EDADB_DB_DATABASE_H_
#define EDADB_DB_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "db/query.h"
#include "db/table.h"
#include "db/trigger.h"
#include "expr/predicate.h"
#include "storage/log_record.h"
#include "storage/wal.h"

namespace edadb {

class Transaction;

struct DatabaseOptions {
  std::string dir;
  WalSyncPolicy wal_sync_policy = WalSyncPolicy::kOnCommit;
  uint64_t wal_segment_size_bytes = 16 * 1024 * 1024;
  /// Time source for trigger timestamps and NOW(); defaults to the
  /// system clock.
  Clock* clock = nullptr;
  /// Directory for WAL segments; empty means "<dir>/wal". Sharded
  /// deployments point each shard's database at its own stream (e.g.
  /// "<data_dir>/wal/shard-3") so group commits never serialize across
  /// shards.
  std::string wal_dir;
};

/// The embedded database: catalog + tables + WAL + triggers + query
/// execution. This is the substrate the tutorial assumes — the
/// "commercial database with its complementary software stack" — on
/// which event capture (triggers/journal/queries), message staging and
/// rules evaluation are built.
///
/// Concurrency model: a single writer lock serializes DML and DDL;
/// queries take a shared lock. Transactions buffer their operations and
/// atomically log + apply at Commit() (redo-only logging). Readers never
/// see uncommitted data; a transaction does not read its own writes.
///
/// Durability: every commit appends Begin/op.../Commit records to the
/// WAL before touching memory, with fdatasync per
/// DatabaseOptions::wal_sync_policy. Open() recovers by loading the
/// newest checkpoint snapshot and replaying committed transactions from
/// the WAL.
class Database {
 public:
  /// Opens (and recovers) a database rooted at options.dir.
  EDADB_NODISCARD static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -------------------------------------------------------------------
  // DDL

  EDADB_NODISCARD Result<Table*> CreateTable(const std::string& name, SchemaPtr schema);
  EDADB_NODISCARD Status DropTable(const std::string& name);
  EDADB_NODISCARD Result<Table*> GetTable(const std::string& name);
  std::vector<std::string> ListTables() const;
  EDADB_NODISCARD Status CreateIndex(const std::string& table, const std::string& column,
                     bool unique);

  // -------------------------------------------------------------------
  // Auto-commit DML (each call is its own transaction)

  /// Inserts a record; fires BEFORE/AFTER INSERT triggers.
  EDADB_NODISCARD Result<RowId> Insert(const std::string& table, Record record);

  /// Replaces the row at `row_id`.
  EDADB_NODISCARD Status UpdateRow(const std::string& table, RowId row_id, Record record);

  /// Deletes the row at `row_id`.
  EDADB_NODISCARD Status DeleteRow(const std::string& table, RowId row_id);

  /// Updates all rows matching `where` by calling `mutator` on each;
  /// returns the number updated.
  EDADB_NODISCARD Result<size_t> UpdateWhere(const std::string& table,
                             const Predicate& where,
                             const std::function<Status(Record*)>& mutator);

  /// Deletes all rows matching `where`; returns the number deleted.
  EDADB_NODISCARD Result<size_t> DeleteWhere(const std::string& table,
                             const Predicate& where);

  // -------------------------------------------------------------------
  // Transactions

  /// Starts a buffered transaction. The returned object must outlive its
  /// Commit()/Rollback() call and must not outlive this Database.
  std::unique_ptr<Transaction> BeginTransaction();

  // -------------------------------------------------------------------
  // Queries

  EDADB_NODISCARD Result<QueryResult> Execute(const Query& query) const;

  /// One-line description of the access path Execute would use, e.g.
  /// "index scan on orders.amount [3, 7)" or "full scan of orders
  /// (1200 rows)" — the observability hook behind the planner.
  EDADB_NODISCARD Result<std::string> Explain(const Query& query) const;

  /// Point read.
  EDADB_NODISCARD Result<Record> GetRow(const std::string& table, RowId row_id) const;

  /// Number of rows in `table`.
  EDADB_NODISCARD Result<size_t> CountRows(const std::string& table) const;

  // -------------------------------------------------------------------
  // Triggers (§2.2.a.i: database as message source)

  EDADB_NODISCARD Status CreateTrigger(TriggerDef def);
  EDADB_NODISCARD Status DropTrigger(const std::string& name);
  EDADB_NODISCARD Status SetTriggerEnabled(const std::string& name, bool enabled);
  std::vector<std::string> ListTriggers() const;

  // -------------------------------------------------------------------
  // Checkpoint / journal

  /// Writes a snapshot of all tables and records a checkpoint; recovery
  /// replays the WAL only from the checkpoint LSN. Old WAL segments at
  /// or before `retain_lsn` (often a journal miner's watermark) are
  /// deleted.
  EDADB_NODISCARD Status Checkpoint(Lsn retain_lsn);

  /// Current end of the WAL.
  Lsn wal_end_lsn() const;

  /// Directory containing WAL segments (for journal miners).
  std::string wal_dir() const;

  const DatabaseOptions& options() const { return options_; }
  Clock* clock() const { return clock_; }

  /// Looks up a table by id (journal miners map change records back to
  /// schemas). Returns nullptr when unknown.
  const Table* GetTableById(TableId id) const;

 private:
  friend class Transaction;

  explicit Database(DatabaseOptions options);

  /// One buffered operation inside a transaction.
  struct PendingOp {
    LogRecordType type;
    TableId table_id = 0;
    std::string table_name;
    RowId row_id = 0;
    Record new_record;  // kInsert/kUpdate
  };

  /// Op preparation shared by auto-commit DML and Transaction: validates
  /// against the schema, fires BEFORE triggers (which may rewrite the
  /// record or veto), and allocates the row id for inserts.
  EDADB_NODISCARD Result<PendingOp> PrepareInsert(const std::string& table, Record record);
  EDADB_NODISCARD Result<PendingOp> PrepareUpdate(const std::string& table, RowId row_id,
                                  Record record);
  EDADB_NODISCARD Result<PendingOp> PrepareDelete(const std::string& table, RowId row_id);

  EDADB_NODISCARD Status Recover();
  EDADB_NODISCARD Status LoadSnapshot(const std::string& path);
  EDADB_NODISCARD Status ReplayWal(Lsn from_lsn);
  EDADB_NODISCARD Status ApplyLogRecord(const LogRecord& rec);

  /// Fires matching triggers for `event`; BEFORE trigger errors abort
  /// the operation.
  EDADB_NODISCARD Status FireTriggers(TriggerTiming timing, TriggerEvent* event);

  /// Commit path shared by Transaction and auto-commit DML. Caller does
  /// NOT hold mu_.
  EDADB_NODISCARD Status CommitOps(std::vector<PendingOp> ops);

  /// Validates ops under mu_ before logging (row existence, uniques).
  EDADB_NODISCARD Status ValidateOps(const std::vector<PendingOp>& ops);

  EDADB_NODISCARD Result<Table*> GetTableLocked(const std::string& name);

  DatabaseOptions options_;
  Clock* clock_;

  mutable std::shared_mutex mu_;
  std::unique_ptr<WalWriter> wal_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<TableId, Table*> tables_by_id_;
  TableId next_table_id_ = 1;
  TxnId next_txn_id_ = 1;
  std::map<std::string, TriggerDef> triggers_;
  uint64_t checkpoint_seq_ = 0;
  bool recovering_ = false;
};

/// A buffered transaction. Operations are validated eagerly (BEFORE
/// triggers fire at call time and may rewrite the row) but logged and
/// applied atomically at Commit(); AFTER triggers fire post-commit.
/// Not thread-safe; use from one thread.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  EDADB_NODISCARD Result<RowId> Insert(const std::string& table, Record record);
  EDADB_NODISCARD Status UpdateRow(const std::string& table, RowId row_id, Record record);
  EDADB_NODISCARD Status DeleteRow(const std::string& table, RowId row_id);

  /// Logs and applies all buffered operations. After Commit the object
  /// is finished; further operations fail.
  EDADB_NODISCARD Status Commit();

  /// Discards buffered operations.
  EDADB_NODISCARD Status Rollback();

  size_t num_pending() const { return ops_.size(); }

 private:
  friend class Database;
  explicit Transaction(Database* db) : db_(db) {}

  Database* db_;
  std::vector<Database::PendingOp> ops_;
  bool finished_ = false;
};

}  // namespace edadb

#endif  // EDADB_DB_DATABASE_H_
