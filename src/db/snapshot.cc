#include "db/snapshot.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "storage/log_record.h"

namespace edadb {

namespace {
constexpr uint32_t kSnapshotMagic = 0xEDADB001;
constexpr uint32_t kCheckpointMagic = 0xEDADB002;
}  // namespace

std::string EncodeSnapshot(const Snapshot& snapshot) {
  std::string out;
  PutFixed32(&out, kSnapshotMagic);
  PutVarint32(&out, snapshot.next_table_id);
  PutVarint64(&out, snapshot.next_txn_id);
  PutVarint64(&out, snapshot.tables.size());
  for (const TableSnapshot& t : snapshot.tables) {
    PutVarint32(&out, t.id);
    PutLengthPrefixed(&out, t.name);
    EncodeSchemaFields(t.fields, &out);
    PutVarint64(&out, t.next_row_id);
    PutVarint64(&out, t.indexes.size());
    for (const IndexDef& idx : t.indexes) {
      PutLengthPrefixed(&out, idx.column);
      out.push_back(idx.unique ? 1 : 0);
    }
    PutVarint64(&out, t.rows.size());
    for (const auto& [row_id, bytes] : t.rows) {
      PutVarint64(&out, row_id);
      PutLengthPrefixed(&out, bytes);
    }
  }
  PutFixed32(&out, MaskCrc(Crc32c(out)));
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("snapshot: too short");
  // Verify the trailing CRC over everything before it.
  std::string_view crc_piece = data.substr(data.size() - 4);
  uint32_t stored_crc;
  GetFixed32(&crc_piece, &stored_crc);
  std::string_view body = data.substr(0, data.size() - 4);
  if (MaskCrc(Crc32c(body)) != stored_crc) {
    return Status::Corruption("snapshot: bad checksum");
  }
  uint32_t magic;
  if (!GetFixed32(&body, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  Snapshot snap;
  uint64_t num_tables;
  if (!GetVarint32(&body, &snap.next_table_id) ||
      !GetVarint64(&body, &snap.next_txn_id) ||
      !GetVarint64(&body, &num_tables)) {
    return Status::Corruption("snapshot: truncated header");
  }
  snap.tables.reserve(num_tables);
  for (uint64_t i = 0; i < num_tables; ++i) {
    TableSnapshot t;
    std::string_view name;
    if (!GetVarint32(&body, &t.id) || !GetLengthPrefixed(&body, &name)) {
      return Status::Corruption("snapshot: truncated table header");
    }
    t.name = std::string(name);
    EDADB_ASSIGN_OR_RETURN(t.fields, DecodeSchemaFields(&body));
    uint64_t num_indexes;
    if (!GetVarint64(&body, &t.next_row_id) ||
        !GetVarint64(&body, &num_indexes)) {
      return Status::Corruption("snapshot: truncated table meta");
    }
    for (uint64_t j = 0; j < num_indexes; ++j) {
      std::string_view column;
      if (!GetLengthPrefixed(&body, &column) || body.empty()) {
        return Status::Corruption("snapshot: truncated index def");
      }
      IndexDef def;
      def.column = std::string(column);
      def.unique = body[0] != 0;
      body.remove_prefix(1);
      t.indexes.push_back(std::move(def));
    }
    uint64_t num_rows;
    if (!GetVarint64(&body, &num_rows)) {
      return Status::Corruption("snapshot: truncated row count");
    }
    t.rows.reserve(num_rows);
    for (uint64_t j = 0; j < num_rows; ++j) {
      uint64_t row_id;
      std::string_view bytes;
      if (!GetVarint64(&body, &row_id) || !GetLengthPrefixed(&body, &bytes)) {
        return Status::Corruption("snapshot: truncated row");
      }
      t.rows.emplace_back(row_id, std::string(bytes));
    }
    snap.tables.push_back(std::move(t));
  }
  if (!body.empty()) return Status::Corruption("snapshot: trailing bytes");
  return snap;
}

std::string EncodeCheckpointMeta(const CheckpointMeta& meta) {
  std::string out;
  PutFixed32(&out, kCheckpointMagic);
  PutLengthPrefixed(&out, meta.snapshot_file);
  PutFixed64(&out, meta.replay_from_lsn);
  PutFixed32(&out, MaskCrc(Crc32c(out)));
  return out;
}

Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("checkpoint meta: too short");
  std::string_view crc_piece = data.substr(data.size() - 4);
  uint32_t stored_crc;
  GetFixed32(&crc_piece, &stored_crc);
  std::string_view body = data.substr(0, data.size() - 4);
  if (MaskCrc(Crc32c(body)) != stored_crc) {
    return Status::Corruption("checkpoint meta: bad checksum");
  }
  uint32_t magic;
  std::string_view file;
  uint64_t lsn;
  if (!GetFixed32(&body, &magic) || magic != kCheckpointMagic ||
      !GetLengthPrefixed(&body, &file) || !GetFixed64(&body, &lsn) ||
      !body.empty()) {
    return Status::Corruption("checkpoint meta: malformed");
  }
  CheckpointMeta meta;
  meta.snapshot_file = std::string(file);
  meta.replay_from_lsn = lsn;
  return meta;
}

}  // namespace edadb
