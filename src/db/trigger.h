#ifndef EDADB_DB_TRIGGER_H_
#define EDADB_DB_TRIGGER_H_

#include <functional>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "expr/predicate.h"
#include "storage/log_record.h"
#include "value/record.h"

namespace edadb {

/// When a trigger fires relative to the data change. BEFORE triggers may
/// veto (return a non-OK Status) or rewrite the new row; AFTER triggers
/// observe committed changes — they are the tutorial's §2.2.a.i
/// "capturing events using database triggers" hook.
enum class TriggerTiming { kBefore, kAfter };

/// DML operations a trigger subscribes to; combinable as a bitmask.
enum DmlOp : uint32_t {
  kDmlInsert = 1u << 0,
  kDmlUpdate = 1u << 1,
  kDmlDelete = 1u << 2,
};

std::string_view DmlOpToString(DmlOp op);

/// What a firing trigger sees. `new_row` is mutable for BEFORE
/// INSERT/UPDATE triggers; `old_row` is set for UPDATE/DELETE.
struct TriggerEvent {
  DmlOp op = kDmlInsert;
  std::string table_name;
  TableId table_id = 0;
  RowId row_id = 0;
  TxnId txn_id = kInvalidTxnId;
  TimestampMicros timestamp = 0;
  const Record* old_row = nullptr;
  Record* new_row = nullptr;
};

using TriggerAction = std::function<Status(const TriggerEvent&)>;

/// A trigger definition. The WHEN predicate is an expression-as-data
/// evaluated against a combined view of the rows: plain column names
/// resolve to the new row (old row for DELETE), and the prefixed forms
/// `new.col` / `old.col` address each side explicitly.
struct TriggerDef {
  std::string name;
  std::string table;
  TriggerTiming timing = TriggerTiming::kAfter;
  uint32_t ops = kDmlInsert | kDmlUpdate | kDmlDelete;
  std::optional<Predicate> when;  // Absent = always fire.
  TriggerAction action;
  bool enabled = true;
};

/// RowAccessor exposing a trigger event's old/new rows to the WHEN
/// predicate.
class TriggerRowView : public RowAccessor {
 public:
  explicit TriggerRowView(const TriggerEvent& event) : event_(event) {}

  std::optional<Value> GetAttribute(std::string_view name) const override {
    constexpr std::string_view kNewPrefix = "new.";
    constexpr std::string_view kOldPrefix = "old.";
    if (name.substr(0, kNewPrefix.size()) == kNewPrefix) {
      return FromRow(event_.new_row, name.substr(kNewPrefix.size()));
    }
    if (name.substr(0, kOldPrefix.size()) == kOldPrefix) {
      return FromRow(event_.old_row, name.substr(kOldPrefix.size()));
    }
    // Unprefixed: the row that "is" the event.
    const Record* primary =
        event_.op == kDmlDelete ? event_.old_row : event_.new_row;
    return FromRow(primary, name);
  }

 private:
  static std::optional<Value> FromRow(const Record* row,
                                      std::string_view name) {
    if (row == nullptr) return std::nullopt;
    return row->GetAttribute(name);
  }

  const TriggerEvent& event_;
};

}  // namespace edadb

#endif  // EDADB_DB_TRIGGER_H_
