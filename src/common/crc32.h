#ifndef EDADB_COMMON_CRC32_H_
#define EDADB_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace edadb {

/// CRC-32C (Castagnoli), software table implementation. Used to checksum
/// write-ahead-log records so torn or corrupted tails are detected on
/// recovery.
uint32_t Crc32c(std::string_view data);

/// Extends a running CRC with more data.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// Masks a CRC so that checksums of data containing embedded CRCs stay
/// well-distributed (same scheme as LevelDB/RocksDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace edadb

#endif  // EDADB_COMMON_CRC32_H_
