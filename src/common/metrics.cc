#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace edadb {
namespace metrics {

namespace {

bool InitEnabledFromEnv() {
  const char* env = std::getenv("EDADB_METRICS");
  if (env == nullptr || *env == '\0') return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag(InitEnabledFromEnv());
  return flag;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t HostSteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // floor(log2(value)) + 1: value in [2^(i-1), 2^i) lands in bucket i.
  const size_t index = 64 - static_cast<size_t>(__builtin_clzll(value));
  return std::min(index, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Relaxed loads: the snapshot is a statistically consistent view, not
  // a linearizable one (count/sum/buckets may straddle a Record).
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::ResetForTesting() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the requested quantile, 1-based, at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The last bucket is the overflow bucket: its nominal upper bound
      // says nothing about how far beyond it values reached, so the
      // observed max is the only honest answer there.
      if (i + 1 == kNumBuckets) return static_cast<double>(max);
      const double bound =
          static_cast<double>(Histogram::BucketUpperBound(i));
      // Elsewhere the bound can still overshoot a max that landed
      // mid-bucket; clamp so no quantile exceeds the observed max.
      return std::min(bound, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

std::string_view MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace internal {

/// A registered collector. The entry mutex serializes invocation with
/// unregistration so a handle's destruction strictly happens-after any
/// in-flight call (the owner's state is safe to tear down afterwards).
struct CollectorEntry {
  Mutex mu{"metrics::CollectorEntry::mu_"};
  Collector fn EDADB_GUARDED_BY(mu);
};

}  // namespace internal

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), entry_(std::move(other.entry_)) {
  other.registry_ = nullptr;
  other.entry_.reset();
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    Unregister();
    registry_ = other.registry_;
    entry_ = std::move(other.entry_);
    other.registry_ = nullptr;
    other.entry_.reset();
  }
  return *this;
}

void CallbackHandle::Unregister() {
  if (entry_ == nullptr) return;
  {
    // Blocks until a snapshot mid-invocation of this collector is done.
    MutexLock lock(&entry_->mu);
    entry_->fn = nullptr;
  }
  entry_.reset();
  registry_ = nullptr;
}

Registry* Registry::Default() {
  static Registry* registry = new Registry();  // lint:allow(raw-new-delete): intentional leak, outlives static destructors
  return registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

CallbackHandle Registry::RegisterCollector(Collector fn) {
  auto entry = std::make_shared<internal::CollectorEntry>();
  {
    MutexLock entry_lock(&entry->mu);
    entry->fn = std::move(fn);
  }
  {
    MutexLock lock(&mu_);
    // Drop entries whose handles have unregistered (fn cleared); the
    // list would otherwise grow with churned collectors.
    collectors_.erase(
        std::remove_if(collectors_.begin(), collectors_.end(),
                       [](const auto& e) { return e.use_count() == 1; }),
        collectors_.end());
    collectors_.push_back(entry);
  }
  return CallbackHandle(this, std::move(entry));
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::vector<MetricSnapshot> raw;
  std::vector<std::shared_ptr<internal::CollectorEntry>> collectors;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, counter] : counters_) {
      MetricSnapshot ms;
      ms.name = name;
      ms.kind = MetricKind::kCounter;
      ms.value = static_cast<int64_t>(counter->Value());
      raw.push_back(std::move(ms));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSnapshot ms;
      ms.name = name;
      ms.kind = MetricKind::kGauge;
      ms.value = gauge->Value();
      raw.push_back(std::move(ms));
    }
    for (const auto& [name, hist] : histograms_) {
      const HistogramSnapshot h = hist->Snapshot();
      MetricSnapshot ms;
      ms.name = name;
      ms.kind = MetricKind::kHistogram;
      ms.value = static_cast<int64_t>(h.count);
      ms.count = h.count;
      ms.sum = h.sum;
      ms.max = h.max;
      ms.p50 = h.Percentile(0.50);
      ms.p95 = h.Percentile(0.95);
      ms.p99 = h.Percentile(0.99);
      raw.push_back(std::move(ms));
    }
    collectors = collectors_;
  }
  // Collectors run with mu_ released so they may take subsystem locks.
  for (const auto& entry : collectors) {
    MutexLock entry_lock(&entry->mu);
    if (entry->fn != nullptr) entry->fn(&raw);
  }
  // Aggregate duplicates (same name from several collectors: e.g. two
  // processors in one test binary): scalars sum, distributions merge
  // coarsely (count/sum add, max maxes; percentiles keep the larger).
  std::map<std::string, MetricSnapshot> merged;
  for (MetricSnapshot& ms : raw) {
    auto [it, inserted] = merged.try_emplace(ms.name);
    if (inserted) {
      it->second = std::move(ms);
    } else {
      MetricSnapshot& into = it->second;
      into.value += ms.value;
      into.count += ms.count;
      into.sum += ms.sum;
      into.max = std::max(into.max, ms.max);
      into.p50 = std::max(into.p50, ms.p50);
      into.p95 = std::max(into.p95, ms.p95);
      into.p99 = std::max(into.p99, ms.p99);
    }
  }
  std::vector<MetricSnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, ms] : merged) out.push_back(std::move(ms));
  return out;
}

std::string Registry::DumpText() const {
  std::string out;
  for (const MetricSnapshot& ms : Snapshot()) {
    out += ms.name;
    out += ' ';
    out += MetricKindToString(ms.kind);
    if (ms.kind == MetricKind::kHistogram) {
      out += StringPrintf(
          " count=%llu sum=%llu p50=%.0f p95=%.0f p99=%.0f max=%llu",
          static_cast<unsigned long long>(ms.count),
          static_cast<unsigned long long>(ms.sum), ms.p50, ms.p95, ms.p99,
          static_cast<unsigned long long>(ms.max));
    } else {
      out += StringPrintf(" %lld", static_cast<long long>(ms.value));
    }
    out += '\n';
  }
  return out;
}

std::string Registry::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& ms : Snapshot()) {
    if (!first) out += ",";
    first = false;
    // Metric names are code-chosen identifiers (module.name), never
    // user data, so no JSON escaping is needed.
    out += StringPrintf("\n  {\"name\": \"%s\", \"kind\": \"%s\"",
                        ms.name.c_str(),
                        std::string(MetricKindToString(ms.kind)).c_str());
    if (ms.kind == MetricKind::kHistogram) {
      out += StringPrintf(
          ", \"count\": %llu, \"sum\": %llu, \"p50\": %.1f, \"p95\": %.1f, "
          "\"p99\": %.1f, \"max\": %llu}",
          static_cast<unsigned long long>(ms.count),
          static_cast<unsigned long long>(ms.sum), ms.p50, ms.p95, ms.p99,
          static_cast<unsigned long long>(ms.max));
    } else {
      out += StringPrintf(", \"value\": %lld}",
                          static_cast<long long>(ms.value));
    }
  }
  out += "\n]\n";
  return out;
}

void Registry::ResetForTesting() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTesting();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, hist] : histograms_) hist->ResetForTesting();
}

}  // namespace metrics
}  // namespace edadb
