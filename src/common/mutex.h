#ifndef EDADB_COMMON_MUTEX_H_
#define EDADB_COMMON_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

// ---------------------------------------------------------------------
// Clang thread-safety analysis annotations.
//
// Every mutex-protected member in the concurrent hot path (EventBus,
// RulesEngine, Broker, QueueManager, dispatcher/propagator, ...) is
// declared EDADB_GUARDED_BY(mu_) and every helper that assumes a held
// lock is declared EDADB_REQUIRES(mu_), so `clang++ -Wthread-safety`
// machine-checks the locking discipline at compile time. Under other
// compilers the macros expand to nothing.
// ---------------------------------------------------------------------

#if defined(__clang__)
#define EDADB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EDADB_THREAD_ANNOTATION(x)
#endif

#define EDADB_CAPABILITY(x) EDADB_THREAD_ANNOTATION(capability(x))
#define EDADB_SCOPED_CAPABILITY EDADB_THREAD_ANNOTATION(scoped_lockable)
#define EDADB_GUARDED_BY(x) EDADB_THREAD_ANNOTATION(guarded_by(x))
#define EDADB_PT_GUARDED_BY(x) EDADB_THREAD_ANNOTATION(pt_guarded_by(x))
#define EDADB_ACQUIRED_BEFORE(...) \
  EDADB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EDADB_ACQUIRED_AFTER(...) \
  EDADB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define EDADB_REQUIRES(...) \
  EDADB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EDADB_ACQUIRE(...) \
  EDADB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EDADB_RELEASE(...) \
  EDADB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EDADB_TRY_ACQUIRE(...) \
  EDADB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EDADB_EXCLUDES(...) EDADB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define EDADB_ASSERT_CAPABILITY(x) \
  EDADB_THREAD_ANNOTATION(assert_capability(x))
#define EDADB_RETURN_CAPABILITY(x) EDADB_THREAD_ANNOTATION(lock_returned(x))
#define EDADB_NO_THREAD_SAFETY_ANALYSIS \
  EDADB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace edadb {

namespace lock_graph {

/// Runtime lock-order checker behind the Mutex/RecursiveMutex wrappers.
/// Named mutexes are nodes in a global acquired-before graph keyed by
/// name (so ordering is per lock *class*, e.g. "QueueManager::mu_", not
/// per instance). Each acquisition while other locks are held records
/// held->acquired edges; an edge that closes a cycle is a lock-order
/// inversion and aborts the process with the full cycle, which turns
/// latent deadlocks into deterministic test failures.
///
/// Enabled by default in debug builds (!NDEBUG); tests and sanitizer
/// runs may toggle it explicitly. Disabled, the cost per Lock() is one
/// relaxed atomic load.
void Enable(bool enabled);
bool IsEnabled();

/// Drops every recorded edge (test isolation).
void ResetForTesting();

namespace internal {
void RecordAcquire(const void* mutex, const char* name, bool recursive);
void RecordRelease(const void* mutex);
}  // namespace internal

}  // namespace lock_graph

/// std::mutex wrapper carrying the `capability` annotation plus
/// lock-graph bookkeeping. Pass a name (a string literal, typically
/// "Class::member") to participate in lock-order checking; unnamed
/// mutexes are only checked for self-deadlock.
class EDADB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EDADB_ACQUIRE() {
    lock_graph::internal::RecordAcquire(this, name_, /*recursive=*/false);
    mu_.lock();
  }

  void Unlock() EDADB_RELEASE() {
    mu_.unlock();
    lock_graph::internal::RecordRelease(this);
  }

  bool TryLock() EDADB_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_graph::internal::RecordAcquire(this, name_, /*recursive=*/false);
    return true;
  }

  // BasicLockable interface so the wrapper composes with
  // std::condition_variable_any and std::scoped_lock. Annotated like
  // Lock()/Unlock() so direct use stays visible to the analysis.
  void lock() EDADB_ACQUIRE() { Lock(); }
  void unlock() EDADB_RELEASE() { Unlock(); }

 private:
  std::mutex mu_;
  const char* name_ = nullptr;
};

/// std::recursive_mutex wrapper. Needed where database trigger
/// callbacks re-enter the owner while it already holds the lock
/// (QueueManager's enqueue -> commit -> trigger -> runtime update path).
class EDADB_CAPABILITY("recursive_mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  explicit RecursiveMutex(const char* name) : name_(name) {}

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() EDADB_ACQUIRE() {
    lock_graph::internal::RecordAcquire(this, name_, /*recursive=*/true);
    mu_.lock();
  }

  void Unlock() EDADB_RELEASE() {
    mu_.unlock();
    lock_graph::internal::RecordRelease(this);
  }

  void lock() EDADB_ACQUIRE() { Lock(); }
  void unlock() EDADB_RELEASE() { Unlock(); }

 private:
  std::recursive_mutex mu_;
  const char* name_ = nullptr;
};

/// RAII guard for Mutex (the analysis-aware std::lock_guard).
class EDADB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) EDADB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() EDADB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII guard for RecursiveMutex.
class EDADB_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) EDADB_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock();
  }
  ~RecursiveMutexLock() EDADB_RELEASE() { mu_->Unlock(); }

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex* const mu_;
};

/// Condition variable working over the annotated wrappers. Waiters must
/// hold the mutex exactly once (also true of the std types it wraps).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The waits release and reacquire through the wrapper's annotated
  // lock()/unlock(), which the analysis cannot model inside one
  // function body; REQUIRES covers callers, NO_ANALYSIS the bodies.
  void Wait(Mutex* mu) EDADB_REQUIRES(mu) EDADB_NO_THREAD_SAFETY_ANALYSIS;
  void Wait(RecursiveMutex* mu) EDADB_REQUIRES(mu)
      EDADB_NO_THREAD_SAFETY_ANALYSIS;

  /// Returns false on timeout.
  bool WaitForMicros(Mutex* mu, int64_t micros) EDADB_REQUIRES(mu)
      EDADB_NO_THREAD_SAFETY_ANALYSIS;
  bool WaitForMicros(RecursiveMutex* mu, int64_t micros) EDADB_REQUIRES(mu)
      EDADB_NO_THREAD_SAFETY_ANALYSIS;

  void Signal();
  void SignalAll();

 private:
  std::condition_variable_any cv_;
};

}  // namespace edadb

#endif  // EDADB_COMMON_MUTEX_H_
