#include "common/clock.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>

namespace edadb {

TimestampMicros Clock::SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TimestampMicros SystemClock::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();  // lint:allow(raw-new-delete): intentional leak, outlives static destructors
  return clock;
}

std::string FormatTimestamp(TimestampMicros ts) {
  const time_t secs = static_cast<time_t>(ts / kMicrosPerSecond);
  const int64_t micros = ts % kMicrosPerSecond;
  struct tm tm_buf;
  gmtime_r(&secs, &tm_buf);
  char buf[80];  // Worst case 79 bytes for INT_MAX-ish tm_year values.
  std::snprintf(buf, sizeof(buf),
                "%04d-%02d-%02d %02d:%02d:%02d.%06" PRId64,
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                micros < 0 ? -micros : micros);
  return buf;
}

}  // namespace edadb
