#include "common/random.h"

#include <cassert>
#include <cmath>

namespace edadb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full int64 range.
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::OneIn(uint64_t n) { return Uniform(n) == 0; }

double Random::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Random::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  // zeta(n) is O(n) to compute; cache per (n, theta) would be nicer but
  // workload generators call this with a fixed n, so memoize the last.
  static thread_local uint64_t cached_n = 0;
  static thread_local double cached_theta = -1.0;
  static thread_local double zetan = 0.0;
  if (cached_n != n || cached_theta != theta) {
    zetan = 0.0;
    for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(i, theta);
    cached_n = n;
    cached_theta = theta;
  }
  const double alpha = 1.0 / (1.0 - theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - std::pow(0.5, theta) * 2.0 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return rank >= n ? n - 1 : rank;
}

std::string Random::NextString(size_t len) {
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>('a' + Uniform(26));
  }
  return out;
}

}  // namespace edadb
