#ifndef EDADB_COMMON_STATUS_H_
#define EDADB_COMMON_STATUS_H_

#include <ostream>
#include <source_location>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace edadb {

/// Error categories used across the library. Library code never throws;
/// every fallible operation returns a Status (or a Result<T>, see
/// common/result.h) in the style of RocksDB / Abseil.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kFailedPrecondition = 7,
  kOutOfRange = 8,
  kResourceExhausted = 9,
  kAborted = 10,
  kTimedOut = 11,
  kInternal = 12,
};

/// Returns a stable human-readable name ("NotFound", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

namespace internal_status {
/// Prints the unexamined error (with its originating factory site) to
/// stderr and aborts. Out of line so the hot path stays small.
[[noreturn]] void UncheckedStatusAbort(const char* file, int line, int code,
                                       const char* message);
}  // namespace internal_status

/// A Status holds the outcome of an operation: kOk, or an error code plus
/// a message describing what went wrong. Statuses are cheap to copy for
/// the OK case and small otherwise.
///
/// The class-level EDADB_NODISCARD makes dropping any by-value Status a
/// -Wunused-result warning (an error under EDADB_WERROR); intentional
/// discards must go through EDADB_IGNORE_STATUS (common/macros.h).
///
/// Building with -DEDADB_CHECK_STATUS=ON additionally arms a debug
/// detector: each Status remembers whether its outcome was ever examined
/// (ok() / code() / Is*() / ToString() / message() / comparison /
/// move-out), and destroying or overwriting an *unexamined error* aborts,
/// printing the factory call site that created it. This catches drops
/// that launder through variables, which [[nodiscard]] cannot see.
/// Copies and moves of an error start life unexamined again, so
/// propagating an error to a caller re-obligates the caller to look at
/// it. The flag changes the class layout and must be set for the whole
/// build (the CMake option handles this), never per target.
class EDADB_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message,
         std::source_location loc = std::source_location::current())
      : code_(code), message_(std::move(message)) {
#ifdef EDADB_CHECK_STATUS
    checked_ = (code_ == StatusCode::kOk);
    origin_file_ = loc.file_name();
    origin_line_ = static_cast<int>(loc.line());
#else
    (void)loc;
#endif
  }

#ifdef EDADB_CHECK_STATUS
  Status(const Status& other)
      : code_(other.code_),
        message_(other.message_),
        checked_(other.code_ == StatusCode::kOk),
        origin_file_(other.origin_file_),
        origin_line_(other.origin_line_) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      EnforceExamined();  // overwriting destroys the old outcome
      code_ = other.code_;
      message_ = other.message_;
      checked_ = (code_ == StatusCode::kOk);
      origin_file_ = other.origin_file_;
      origin_line_ = other.origin_line_;
    }
    return *this;
  }
  Status(Status&& other) noexcept
      : code_(other.code_),
        message_(std::move(other.message_)),
        checked_(other.code_ == StatusCode::kOk),
        origin_file_(other.origin_file_),
        origin_line_(other.origin_line_) {
    other.checked_ = true;  // moved-out counts as examined
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      EnforceExamined();
      code_ = other.code_;
      message_ = std::move(other.message_);
      checked_ = (code_ == StatusCode::kOk);
      origin_file_ = other.origin_file_;
      origin_line_ = other.origin_line_;
      other.checked_ = true;
    }
    return *this;
  }
  ~Status() { EnforceExamined(); }
#else
  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;
#endif

  // Factory helpers, one per error category. The defaulted
  // source_location captures the *caller's* file:line so an
  // EDADB_CHECK_STATUS abort can name the site that created the error.
  static Status OK() { return Status(); }
  static Status NotFound(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kNotFound, std::move(msg), loc);
  }
  static Status AlreadyExists(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kAlreadyExists, std::move(msg), loc);
  }
  static Status InvalidArgument(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kInvalidArgument, std::move(msg), loc);
  }
  static Status Corruption(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kCorruption, std::move(msg), loc);
  }
  static Status IOError(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kIOError, std::move(msg), loc);
  }
  static Status NotSupported(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kNotSupported, std::move(msg), loc);
  }
  static Status FailedPrecondition(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg), loc);
  }
  static Status OutOfRange(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kOutOfRange, std::move(msg), loc);
  }
  static Status ResourceExhausted(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kResourceExhausted, std::move(msg), loc);
  }
  static Status Aborted(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kAborted, std::move(msg), loc);
  }
  static Status TimedOut(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kTimedOut, std::move(msg), loc);
  }
  static Status Internal(
      std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(StatusCode::kInternal, std::move(msg), loc);
  }

  bool ok() const {
    MarkExamined();
    return code_ == StatusCode::kOk;
  }
  StatusCode code() const {
    MarkExamined();
    return code_;
  }
  const std::string& message() const {
    MarkExamined();
    return message_;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Marks this status examined without reading it — for carriers that
  /// hold a Status as *data* rather than as an outcome owed to a
  /// caller (e.g. failpoint::Action stores the error it will inject
  /// later). Prefer EDADB_IGNORE_STATUS at ordinary call sites: this
  /// escape hatch carries no written justification.
  void PermitUncheckedError() const { MarkExamined(); }

  /// An error born already acknowledged to the EDADB_CHECK_STATUS
  /// detector — for default payload values inside carrier types
  /// (failpoint::Action's default injected error), where even the
  /// assignment that replaces the default would otherwise trip the
  /// overwrite enforcement. Returned as a prvalue so copy elision
  /// preserves the acknowledged state; ordinary copies of it are
  /// re-obligated as usual.
  static Status UncheckedPayload(
      StatusCode code, std::string msg,
      std::source_location loc = std::source_location::current()) {
    return Status(PermitUncheckedTag{}, code, std::move(msg), loc);
  }

  friend bool operator==(const Status& a, const Status& b) {
    a.MarkExamined();
    b.MarkExamined();
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  // Result's constructor asserts on the embedded status (which examines
  // it) and then re-arms the detector: wrapping an error in a Result
  // must not discharge the eventual caller's obligation.
  template <typename U>
  friend class Result;

  struct PermitUncheckedTag {};
  Status(PermitUncheckedTag, StatusCode code, std::string message,
         std::source_location loc)
      : Status(code, std::move(message), loc) {
    MarkExamined();
  }

#ifdef EDADB_CHECK_STATUS
  void MarkExamined() const { checked_ = true; }
  void MarkUnexamined() const { checked_ = (code_ == StatusCode::kOk); }
  void EnforceExamined() const {
    if (!checked_ && code_ != StatusCode::kOk) {
      internal_status::UncheckedStatusAbort(origin_file_, origin_line_,
                                            static_cast<int>(code_),
                                            message_.c_str());
    }
  }
#else
  void MarkExamined() const {}
  void MarkUnexamined() const {}
#endif

  StatusCode code_;
  std::string message_;
#ifdef EDADB_CHECK_STATUS
  mutable bool checked_ = true;
  const char* origin_file_ = "";
  int origin_line_ = 0;
#endif
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace edadb

#endif  // EDADB_COMMON_STATUS_H_
