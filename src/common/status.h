#ifndef EDADB_COMMON_STATUS_H_
#define EDADB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace edadb {

/// Error categories used across the library. Library code never throws;
/// every fallible operation returns a Status (or a Result<T>, see
/// common/result.h) in the style of RocksDB / Abseil.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kFailedPrecondition = 7,
  kOutOfRange = 8,
  kResourceExhausted = 9,
  kAborted = 10,
  kTimedOut = 11,
  kInternal = 12,
};

/// Returns a stable human-readable name ("NotFound", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds the outcome of an operation: kOk, or an error code plus
/// a message describing what went wrong. Statuses are cheap to copy for
/// the OK case and small otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace edadb

#endif  // EDADB_COMMON_STATUS_H_
