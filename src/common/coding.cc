#include "common/coding.h"

#include <cstring>

namespace edadb {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);  // Little-endian hosts only (x86/ARM).
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  size_t n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>((value & 0x7f) | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->append(buf, n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  PutFixed64(dst, bits);
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  std::memcpy(value, input->data(), 4);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  std::memcpy(value, input->data(), 8);
  input->remove_prefix(8);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

bool GetDouble(std::string_view* input, double* value) {
  uint64_t bits;
  if (!GetFixed64(input, &bits)) return false;
  std::memcpy(value, &bits, 8);
  return true;
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarsint64(std::string_view* input, int64_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

}  // namespace edadb
