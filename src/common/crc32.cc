#include "common/crc32.h"

#include <array>

namespace edadb {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78u;  // Reflected Castagnoli.

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace edadb
