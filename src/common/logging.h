#ifndef EDADB_COMMON_LOGGING_H_
#define EDADB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace edadb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace edadb

#define EDADB_LOG(level)                                           \
  if (::edadb::LogLevel::k##level < ::edadb::GetLogLevel()) {      \
  } else                                                           \
    ::edadb::internal_logging::LogMessage(                         \
        ::edadb::LogLevel::k##level, __FILE__, __LINE__)           \
        .stream()

#endif  // EDADB_COMMON_LOGGING_H_
