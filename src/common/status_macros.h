#ifndef EDADB_COMMON_STATUS_MACROS_H_
#define EDADB_COMMON_STATUS_MACROS_H_

#include <utility>

#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define EDADB_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::edadb::Status _edadb_status = (expr);            \
    if (!_edadb_status.ok()) return _edadb_status;     \
  } while (false)

#define EDADB_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define EDADB_STATUS_MACROS_CONCAT_(x, y) \
  EDADB_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define EDADB_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  EDADB_ASSIGN_OR_RETURN_IMPL_(                                          \
      EDADB_STATUS_MACROS_CONCAT_(_edadb_result_, __LINE__), lhs, rexpr)

#define EDADB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

#endif  // EDADB_COMMON_STATUS_MACROS_H_
