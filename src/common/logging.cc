#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/clock.h"

namespace edadb {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  // Typed wall read: log lines are data, and keeping the raw-read-free
  // invariant here lets scripts/analyze.py's clock-domain check stay
  // zero-suppression in src/common/.
  stream_ << "[" << LevelName(level) << " "
          << FormatTimestamp(SystemClock::Default()->WallNow().micros())
          << " " << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal_logging
}  // namespace edadb
