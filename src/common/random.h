#ifndef EDADB_COMMON_RANDOM_H_
#define EDADB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace edadb {

/// Deterministic pseudo-random generator (xoshiro256**). Used by tests,
/// property checks and workload generators so runs are reproducible from
/// a seed. Not thread-safe; use one instance per thread.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability 1/n. Requires n > 0.
  bool OneIn(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with skew `theta` in (0, 1).
  /// theta near 1 is highly skewed. Uses the rejection-free approximation
  /// of Gray et al. ("Quickly generating billion-record synthetic
  /// databases").
  uint64_t Zipf(uint64_t n, double theta);

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace edadb

#endif  // EDADB_COMMON_RANDOM_H_
