#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace edadb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

/// Shared wildcard matcher; `any_run` / `any_one` are the two wildcard
/// characters. Iterative two-pointer algorithm with backtracking to the
/// last `any_run`, O(text * pattern) worst case, O(text + pattern)
/// typical.
bool WildcardMatch(std::string_view text, std::string_view pattern,
                   char any_run, char any_one) {
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == any_one || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == any_run) {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == any_run) ++p;
  return p == pattern.size();
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return WildcardMatch(text, pattern, '%', '_');
}

bool GlobMatch(std::string_view text, std::string_view pattern) {
  return WildcardMatch(text, pattern, '*', '?');
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", static_cast<unsigned long long>(bytes));
  return StringPrintf("%.1f %s", value, kUnits[unit]);
}

}  // namespace edadb
