#ifndef EDADB_COMMON_MACROS_H_
#define EDADB_COMMON_MACROS_H_

/// Project-wide annotation macros. Kept include-free so any header can
/// pull this in without cost.

/// Must-use-result marker for fallible APIs. `Status` and `Result<T>`
/// carry a class-level EDADB_NODISCARD, so *every* function returning
/// them by value already warns on a dropped result; the per-function
/// annotation on declarations is documentation plus a guard for APIs
/// that return references, bools, or handles whose loss is a bug.
#define EDADB_NODISCARD [[nodiscard]]

/// Explicitly discards a Status (or Result<T>) with a written
/// justification. This is the ONLY sanctioned way to drop a fallible
/// result: bare drops fail the -Werror build via EDADB_NODISCARD, and
/// `(void)` casts fail scripts/lint.py. The justification must be a
/// non-empty string literal; it is compiled out but keeps the reason
/// next to the discard where review can see it.
///
/// The expression is evaluated exactly once and its `ok()` is consulted,
/// so an EDADB_CHECK_STATUS build counts the status as examined and the
/// debug unchecked-status detector stays quiet.
#define EDADB_IGNORE_STATUS(expr, reason)                                \
  do {                                                                   \
    static_assert(sizeof("" reason) > 1,                                 \
                  "EDADB_IGNORE_STATUS requires a non-empty string "     \
                  "literal explaining why dropping this status is "      \
                  "safe");                                               \
    auto&& _edadb_ignored_status = (expr);                               \
    (void)_edadb_ignored_status.ok();                                    \
  } while (false)

#endif  // EDADB_COMMON_MACROS_H_
