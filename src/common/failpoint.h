#ifndef EDADB_COMMON_FAILPOINT_H_
#define EDADB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace edadb {
namespace failpoint {

/// ---------------------------------------------------------------------
/// Deterministic fault injection (the correctness backbone for the
/// crash-recovery torture harness).
///
/// Production code marks interesting sites with `FAILPOINT("wal.sync")`.
/// Sites are inert until a test arms them; an armed site can
///   - return an injected Status from the enclosing function,
///   - simulate a process crash (the registered crash handler runs;
///     tests install one that throws, unwinding back to the fixture
///     which then drops the Database object without any shutdown sync),
///   - delay the calling thread.
/// Probabilistic modes draw from one seeded PRNG (SetSeed), so a whole
/// torture run replays byte-for-byte from `EDADB_TEST_SEED`.
///
/// Two gates keep the macro honest about cost:
///   - compile time: when `EDADB_FAILPOINTS` is not defined (Release
///     builds) or `EDADB_FAILPOINT_DISABLE` is defined, FAILPOINT
///     expands to `do {} while (0)` and failpoint.cc is dead weight;
///   - run time: the enabled expansion first checks one relaxed atomic
///     ("is anything armed at all?") before taking any lock, so an
///     unarmed site costs a single load on the hot path.
/// ---------------------------------------------------------------------

enum class ActionKind {
  /// Make the enclosing function return `Action::status`.
  kReturnStatus,
  /// Invoke the crash handler (default: abort()). Tests install a
  /// handler that throws testing::SimulatedCrash so the fixture can
  /// "restart the process" by reopening the database.
  kCrash,
  /// Sleep the calling thread for `Action::arg` microseconds.
  kDelay,
};

/// What an armed failpoint does when it fires.
struct Action {
  ActionKind kind = ActionKind::kReturnStatus;
  /// Injected error for kReturnStatus. OK makes a FAILPOINT site fire
  /// without failing; custom sites may map OK to a site-specific
  /// default (e.g. "mq.propagate.deliver" injects TimedOut).
  /// UncheckedPayload: the default is data awaiting injection, not an
  /// outcome, so the EDADB_CHECK_STATUS detector must not demand it be
  /// examined (nor veto the assignment that replaces it).
  Status status =
      Status::UncheckedPayload(StatusCode::kIOError, "injected fault");
  /// kDelay: sleep micros. Custom sites reuse it as a site-specific
  /// knob, e.g. "wal.append.torn" reads it as the number of frame bytes
  /// to persist before failing.
  int64_t arg = 0;
  /// Chance in [0,1] that an eligible hit fires (drawn from the
  /// registry PRNG; see SetSeed).
  double probability = 1.0;
  /// Let the first `skip` hits through unharmed.
  uint64_t skip = 0;
  /// Stop firing after this many fires; -1 = unlimited.
  int64_t max_fires = -1;

  /// `status` is a payload (the error to inject later), not an outcome
  /// owed to anyone — without this the EDADB_CHECK_STATUS detector
  /// would abort on every Action that is destroyed unfired.
  ~Action() { status.PermitUncheckedError(); }
  Action() = default;
  Action(const Action&) = default;
  Action& operator=(const Action&) = default;
};

/// Outcome of evaluating a site. Fire() never invokes the crash
/// handler itself: the FAILPOINT macro (or a custom site that must
/// sequence side effects first, like a torn write) calls Crash() when
/// `kind == kCrash`, so sites control what hits disk before "death".
struct FireResult {
  bool fired = false;
  ActionKind kind = ActionKind::kReturnStatus;
  Status status;  // Non-OK only for a fired kReturnStatus.
  int64_t arg = 0;
};

/// Arms `name` with `action`. Re-arming replaces the previous action
/// and resets its skip/fire counters.
void Arm(const std::string& name, Action action);
void Disarm(const std::string& name);
void DisarmAll();

/// Reseeds the registry PRNG used for `Action::probability` draws.
void SetSeed(uint64_t seed);

/// Installs the crash handler invoked by Crash(). Passing nullptr
/// restores the default (abort). The handler may throw; nothing in
/// this library catches, so the exception unwinds to the test fixture.
void SetCrashHandler(std::function<void(const char* site)> handler);

/// Invokes the crash handler for `site`. May not return.
void Crash(const char* site);

/// Evaluates a site: counts the hit, then applies the armed action's
/// skip/probability/max_fires gates. kDelay sleeps before returning.
/// Called via the FAILPOINT macro or directly by custom sites.
FireResult Fire(const char* name);

/// Times a site was reached while any failpoint was armed (hit counts
/// are only maintained on the slow path). Lets the torture harness
/// verify its site list against reality: a misspelled site name shows
/// zero hits across a whole workload.
uint64_t HitCount(const std::string& name);
void ResetHitCounts();

/// Currently armed site names (for diagnostics).
std::vector<std::string> ArmedSites();

namespace internal {
extern std::atomic<int> g_armed_count;
inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}
}  // namespace internal

}  // namespace failpoint
}  // namespace edadb

#if defined(EDADB_FAILPOINTS) && !defined(EDADB_FAILPOINT_DISABLE)
#define EDADB_FAILPOINTS_ENABLED 1
#else
#define EDADB_FAILPOINTS_ENABLED 0
#endif

#if EDADB_FAILPOINTS_ENABLED
/// Marks an injection site inside a function returning Status or
/// Result<T>. When the armed action is kReturnStatus the injected
/// error becomes the function's return value (Result<T> converts
/// implicitly from Status).
#define FAILPOINT(name)                                                    \
  do {                                                                     \
    if (::edadb::failpoint::internal::AnyArmed()) {                        \
      ::edadb::failpoint::FireResult _fp = ::edadb::failpoint::Fire(name); \
      if (_fp.fired) {                                                     \
        if (_fp.kind == ::edadb::failpoint::ActionKind::kCrash)            \
          ::edadb::failpoint::Crash(name);                                 \
        if (!_fp.status.ok()) return _fp.status;                           \
      }                                                                    \
    }                                                                      \
  } while (0)

/// Same, for void functions and sites that must not early-return:
/// crashes and delays apply, injected Statuses are ignored (the
/// PermitUncheckedError call acknowledges that ignore to the
/// EDADB_CHECK_STATUS detector).
#define FAILPOINT_HIT(name)                                                \
  do {                                                                     \
    if (::edadb::failpoint::internal::AnyArmed()) {                        \
      ::edadb::failpoint::FireResult _fp = ::edadb::failpoint::Fire(name); \
      _fp.status.PermitUncheckedError();                                   \
      if (_fp.fired && _fp.kind == ::edadb::failpoint::ActionKind::kCrash) \
        ::edadb::failpoint::Crash(name);                                   \
    }                                                                      \
  } while (0)
#else
#define FAILPOINT(name) \
  do {                  \
  } while (0)
#define FAILPOINT_HIT(name) \
  do {                      \
  } while (0)
#endif

#endif  // EDADB_COMMON_FAILPOINT_H_
