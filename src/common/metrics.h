#ifndef EDADB_COMMON_METRICS_H_
#define EDADB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace edadb {
namespace metrics {

/// Self-observation layer (the tutorial's "operational characteristics:
/// performance, scalability, tracking" applied to the system itself):
/// a process-wide registry of named counters, gauges and log-bucketed
/// latency histograms, cheap enough to leave on in the hot path.
///
/// Naming scheme: `module.name[.unit]`, lowercase, dot-separated —
/// "wal.sync.latency_us", "mq.queue.orders.depth" (DESIGN.md §11).
///
/// Cost model:
///   - Counters are always live (instance stats are built on them): one
///     relaxed fetch_add on a sharded cache line.
///   - Histograms and LatencyScope honor Enabled() — with EDADB_METRICS
///     off they skip the clock reads and record nothing.
///   - Looking a metric up by name takes the registry mutex; hot paths
///     cache the returned pointer (stable forever) in a local static.

/// Global collection switch. Initialized once from the EDADB_METRICS
/// environment variable ("0"/"off"/"false" disable; default on).
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic host time for latency measurement. This is deliberately
/// NOT the injected edadb::Clock: latencies are real elapsed durations
/// even under a simulated clock.
uint64_t HostSteadyMicros();

/// Monotonically increasing counter. Adds are relaxed atomics sharded
/// across cache lines so concurrent writers do not bounce one line;
/// Value() sums the shards (reads are rare: snapshots and stats).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void ResetForTesting() {
    for (Shard& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  /// Per-thread shard assignment (round-robin at first use).
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// A level that can move both ways (queue depth, durable lag).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time copy of a histogram, mergeable across histograms.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 40;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Value at quantile `q` in [0, 1] (0.5 = p50). Log-bucketed: the
  /// answer is the upper bound of the bucket holding the rank, clamped
  /// to the observed max, so it is exact to within one power of two.
  double Percentile(double q) const;

  void Merge(const HistogramSnapshot& other);
};

/// Lock-free log2-bucketed histogram for latency/size distributions.
/// Bucket 0 holds exactly 0; bucket i>0 holds [2^(i-1), 2^i). Values
/// beyond the last bucket clamp into it (the snapshot max stays exact).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static size_t BucketIndex(uint64_t value);
  /// Largest value the bucket admits (0 for bucket 0, 2^i - 1 else;
  /// the last bucket reports its lower range end despite clamping).
  static uint64_t BucketUpperBound(size_t index);

  /// No-op when metrics are disabled.
  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  void ResetForTesting();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// RAII latency probe: records real elapsed microseconds into `hist`
/// on destruction. When metrics are disabled (or `hist` is null) the
/// constructor takes no clock reading and the destructor is a no-op.
class LatencyScope {
 public:
  explicit LatencyScope(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr),
        start_(hist_ != nullptr ? HostSteadyMicros() : 0) {}

  ~LatencyScope() {
    if (hist_ != nullptr) {
      const uint64_t end = HostSteadyMicros();
      hist_->Record(end > start_ ? end - start_ : 0);
    }
  }

  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  Histogram* const hist_;
  const uint64_t start_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view MetricKindToString(MetricKind kind);

/// One metric's value at snapshot time. For histograms `value` is the
/// sample count and the distribution fields are filled in.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// A collector contributes metrics computed at snapshot time (queue
/// depths, matcher occupancy, WAL lag) by appending MetricSnapshots.
/// Called WITHOUT the registry mutex held, so the callback may take its
/// owner's locks. Two collectors may emit the same name (two processors
/// in one process): scalar values are summed in the snapshot.
using Collector = std::function<void(std::vector<MetricSnapshot>*)>;

namespace internal {
struct CollectorEntry;
}  // namespace internal

class Registry;

/// RAII registration: dropping the handle unregisters the collector and
/// blocks until any in-flight invocation has finished. Do NOT destroy a
/// handle while holding a lock its collector acquires.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  ~CallbackHandle() { Unregister(); }

  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;

  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;

  void Unregister();

 private:
  friend class Registry;
  CallbackHandle(Registry* registry,
                 std::shared_ptr<internal::CollectorEntry> entry)
      : registry_(registry), entry_(std::move(entry)) {}

  Registry* registry_ = nullptr;
  std::shared_ptr<internal::CollectorEntry> entry_;
};

/// Named-metric registry. Instruments are created on first use and
/// never freed, so the returned pointers are stable for the process
/// lifetime and hot paths can cache them.
///
/// Thread-safe. Lock discipline: the registry mutex is a leaf for
/// instrument lookup (safe to call under subsystem locks); Snapshot()
/// invokes collectors with the registry mutex RELEASED, so collectors
/// may take subsystem locks — which is why those subsystems must not
/// destroy their CallbackHandle while holding them.
class Registry {
 public:
  static Registry* Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  EDADB_NODISCARD CallbackHandle RegisterCollector(Collector fn);

  /// All metrics (owned instruments + collector output), deduplicated
  /// by name (scalars summed) and sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// "name kind value ..." per line, sorted; for logs and check.sh.
  std::string DumpText() const;

  /// JSON array of metric objects; for bench artifacts.
  std::string DumpJson() const;

  /// Zeroes every owned instrument (pointers stay valid — hot-path
  /// caches are unaffected). Collectors are left registered.
  void ResetForTesting();

 private:
  mutable Mutex mu_{"metrics::Registry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      EDADB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ EDADB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      EDADB_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<internal::CollectorEntry>> collectors_
      EDADB_GUARDED_BY(mu_);
};

}  // namespace metrics
}  // namespace edadb

#endif  // EDADB_COMMON_METRICS_H_
