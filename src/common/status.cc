#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace edadb {

namespace internal_status {

void UncheckedStatusAbort(const char* file, int line, int code,
                          const char* message) {
  std::fprintf(stderr,
               "edadb: error Status destroyed without being examined: "
               "%.*s: %s (created at %s:%d)\n",
               static_cast<int>(
                   StatusCodeToString(static_cast<StatusCode>(code)).size()),
               StatusCodeToString(static_cast<StatusCode>(code)).data(),
               message, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_status

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace edadb
