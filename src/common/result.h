#ifndef EDADB_COMMON_RESULT_H_
#define EDADB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "common/status_macros.h"  // IWYU pragma: export

namespace edadb {

/// Result<T> carries either a value of type T or a non-OK Status.
/// Accessing value() on an error Result is a programming error and
/// asserts in debug builds.
///
/// Like Status, Result is class-level EDADB_NODISCARD: dropping one on
/// the floor is a -Wunused-result warning, and in EDADB_CHECK_STATUS
/// builds destroying one whose error was never examined aborts (the
/// embedded Status carries the detector).
template <typename T>
class EDADB_NODISCARD Result {
 public:
  /// Implicit from a value: `return MakeThing();`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    // The assert examined the embedded error; re-arm the detector so
    // dropping this Result still aborts under EDADB_CHECK_STATUS.
    status_.MarkUnexamined();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  /// By value from rvalues: `return MakeThing().status();` must not
  /// hand out a reference into the dying temporary.
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace edadb

#endif  // EDADB_COMMON_RESULT_H_
