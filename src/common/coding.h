#ifndef EDADB_COMMON_CODING_H_
#define EDADB_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace edadb {

/// Little-endian fixed-width and varint byte codecs, RocksDB-style.
/// Encoders append to a std::string; decoders consume from a
/// std::string_view in place and return false on underflow/overflow
/// instead of crashing, so record decoding can surface Corruption.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Varint-length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Encodes a double by bit-copying its IEEE-754 representation.
void PutDouble(std::string* dst, double value);

bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);
bool GetDouble(std::string_view* input, double* value);

/// ZigZag transform so small negative ints encode compactly as varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarsint64(std::string* dst, int64_t value);
bool GetVarsint64(std::string_view* input, int64_t* value);

}  // namespace edadb

#endif  // EDADB_COMMON_CODING_H_
