#ifndef EDADB_COMMON_STRING_UTIL_H_
#define EDADB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edadb {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// SQL LIKE matching: '%' matches any run, '_' matches one char.
/// Matching is case-sensitive, per the SQL standard default.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Glob-style matching with '*' and '?'. Used for topic subscriptions.
bool GlobMatch(std::string_view text, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.5 KB", "3.2 MB", ... for human-readable sizes.
std::string FormatBytes(uint64_t bytes);

}  // namespace edadb

#endif  // EDADB_COMMON_STRING_UTIL_H_
