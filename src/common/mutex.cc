#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace edadb {
namespace lock_graph {

namespace {

#ifdef NDEBUG
constexpr bool kEnabledByDefault = false;
#else
constexpr bool kEnabledByDefault = true;
#endif

std::atomic<bool> g_enabled{kEnabledByDefault};

/// One lock a thread currently holds. `count` > 1 only for recursive
/// mutexes.
struct HeldLock {
  const void* mutex;
  const char* name;  // nullptr = unnamed, excluded from ordering.
  int count;
};

/// The locks this thread holds, in acquisition order. Bookkeeping is
/// recorded *before* blocking on the underlying mutex so that the
/// ordering report reflects intent even if the acquisition deadlocks.
thread_local std::vector<HeldLock> t_held;

/// Global acquired-before graph over mutex *names*: edge a->b means
/// "some thread acquired b while holding a". Guarded by its own raw
/// std::mutex (deliberately not a wrapper: the checker cannot check
/// itself).
struct Graph {
  std::mutex mu;
  std::map<std::string, std::set<std::string>> edges;
};

Graph& GetGraph() {
  static Graph* graph = new Graph();  // lint:allow(raw-new-delete): intentional leak, outlives static destructors
  return *graph;
}

/// DFS for a path from `from` to `to`; fills `path` (inclusive of both
/// endpoints) when found. Caller holds the graph mutex.
bool FindPath(const Graph& graph, const std::string& from,
              const std::string& to, std::vector<std::string>* path,
              std::set<std::string>* visited) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == to) return true;
  auto it = graph.edges.find(from);
  if (it != graph.edges.end()) {
    for (const std::string& next : it->second) {
      if (FindPath(graph, next, to, path, visited)) return true;
    }
  }
  path->pop_back();
  return false;
}

[[noreturn]] void ReportInversion(const char* holding, const char* acquiring,
                                  const std::vector<std::string>& path) {
  std::fprintf(stderr,
               "edadb lock-order inversion: acquiring '%s' while holding "
               "'%s', but the established order requires '%s' first:\n",
               acquiring, holding, acquiring);
  for (size_t i = 0; i < path.size(); ++i) {
    std::fprintf(stderr, "  %s'%s'%s\n", i == 0 ? "" : "-> acquired before ",
                 path[i].c_str(), i + 1 == path.size() ? "" : "");
  }
  std::fprintf(stderr,
               "Fix: acquire these mutexes in one global order (see "
               "DESIGN.md \"Concurrency invariants\").\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void ReportSelfDeadlock(const char* name) {
  std::fprintf(stderr,
               "edadb lock error: recursive acquisition of non-recursive "
               "mutex '%s' (self-deadlock)\n",
               name != nullptr ? name : "<unnamed>");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void Enable(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool IsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void ResetForTesting() {
  Graph& graph = GetGraph();
  std::lock_guard lock(graph.mu);
  graph.edges.clear();
}

namespace internal {

void RecordAcquire(const void* mutex, const char* name, bool recursive) {
  if (!IsEnabled()) return;
  for (HeldLock& held : t_held) {
    if (held.mutex == mutex) {
      if (!recursive) ReportSelfDeadlock(name);
      ++held.count;
      return;
    }
  }
  if (name != nullptr) {
    Graph& graph = GetGraph();
    std::lock_guard lock(graph.mu);
    for (const HeldLock& held : t_held) {
      if (held.name == nullptr) continue;
      if (std::string_view(held.name) == name) continue;  // Same class.
      std::set<std::string>& out = graph.edges[held.name];
      if (out.count(name) > 0) continue;  // Known-consistent edge.
      // Adding held->name: if name already reaches held, this closes a
      // cycle — two call paths disagree about the order.
      std::vector<std::string> path;
      std::set<std::string> visited;
      if (FindPath(graph, name, held.name, &path, &visited)) {
        ReportInversion(held.name, name, path);
      }
      out.insert(name);
    }
  }
  t_held.push_back({mutex, name, 1});
}

void RecordRelease(const void* mutex) {
  if (!IsEnabled()) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      if (--it->count == 0) t_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace internal
}  // namespace lock_graph

void CondVar::Wait(Mutex* mu) { cv_.wait(*mu); }

void CondVar::Wait(RecursiveMutex* mu) { cv_.wait(*mu); }

bool CondVar::WaitForMicros(Mutex* mu, int64_t micros) {
  return cv_.wait_for(*mu, std::chrono::microseconds(micros)) ==
         std::cv_status::no_timeout;
}

bool CondVar::WaitForMicros(RecursiveMutex* mu, int64_t micros) {
  return cv_.wait_for(*mu, std::chrono::microseconds(micros)) ==
         std::cv_status::no_timeout;
}

void CondVar::Signal() { cv_.notify_one(); }

void CondVar::SignalAll() { cv_.notify_all(); }

}  // namespace edadb
