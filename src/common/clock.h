#ifndef EDADB_COMMON_CLOCK_H_
#define EDADB_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace edadb {

/// Microseconds since the Unix epoch (or since simulation start for
/// simulated clocks). All event timestamps in the library use this unit.
using TimestampMicros = int64_t;

constexpr TimestampMicros kMicrosPerMilli = 1000;
constexpr TimestampMicros kMicrosPerSecond = 1000 * 1000;
constexpr TimestampMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr TimestampMicros kMicrosPerHour = 60 * kMicrosPerMinute;

/// Abstract time source. Production code uses SystemClock; tests and
/// benchmarks use SimulatedClock so windowing, expiration and visibility
/// timeouts are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual TimestampMicros NowMicros() = 0;

  /// Advances time by `micros`. No-op for real clocks.
  virtual void AdvanceMicros(TimestampMicros micros) = 0;
};

/// Wall-clock time from std::chrono::system_clock.
class SystemClock : public Clock {
 public:
  TimestampMicros NowMicros() override;
  void AdvanceMicros(TimestampMicros /*micros*/) override {}

  /// Process-wide shared instance.
  static SystemClock* Default();
};

/// Deterministic, manually advanced clock.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimestampMicros start_micros = 0)
      : now_(start_micros) {}

  TimestampMicros NowMicros() override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(TimestampMicros micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void SetMicros(TimestampMicros micros) {
    now_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<TimestampMicros> now_;
};

/// Formats a timestamp as "YYYY-MM-DD HH:MM:SS.mmmmmm" (UTC).
std::string FormatTimestamp(TimestampMicros ts);

}  // namespace edadb

#endif  // EDADB_COMMON_CLOCK_H_
