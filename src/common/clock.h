#ifndef EDADB_COMMON_CLOCK_H_
#define EDADB_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace edadb {

/// Microseconds since the Unix epoch (or since simulation start for
/// simulated clocks). All event timestamps in the library use this unit.
using TimestampMicros = int64_t;

constexpr TimestampMicros kMicrosPerMilli = 1000;
constexpr TimestampMicros kMicrosPerSecond = 1000 * 1000;
constexpr TimestampMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr TimestampMicros kMicrosPerHour = 60 * kMicrosPerMinute;

// ---------------------------------------------------------------------
// Clock-domain strong types.
//
// The library runs in two time domains (see Clock below): WALL time is
// data (event timestamps, TTL expiry, anything persisted), STEADY time
// is deadlines (visibility timeouts, redelivery, waits). Mixing them is
// the bug class PR 5 swept out by hand; these tagged wrappers make the
// compiler reject the mix, and scripts/analyze.py's clock-domain check
// covers the raw-integer code that remains (persisted rows).
//
// Domain algebra (anything else refuses to compile):
//   point  - point  -> duration   (same domain only)
//   point  + duration, point - duration -> point
//   point  <op> point             (same domain only)
// Durations are plain TimestampMicros: a span of microseconds has no
// domain. Raw values enter a domain only through the explicit
// FromMicros() gate (or Clock::WallNow()/SteadyNow()), so every
// wall<->steady conversion is a visible, greppable decision.
// ---------------------------------------------------------------------

template <typename DomainTag>
class DomainMicros {
 public:
  /// Zero point of the domain; also the "unset" sentinel (micros()==0).
  constexpr DomainMicros() = default;

  /// The explicit gate from raw microseconds (persisted rows, legacy
  /// interfaces) into the domain. Deliberately not a constructor: every
  /// entry reads FromMicros at the call site.
  static constexpr DomainMicros FromMicros(TimestampMicros micros) {
    return DomainMicros(micros);
  }

  /// The explicit exit back to raw microseconds (persisting, logging).
  constexpr TimestampMicros micros() const { return micros_; }

  // Same-domain comparisons. Cross-domain comparisons do not compile:
  // the other operand would need to be the same DomainMicros<Tag>.
  friend constexpr bool operator==(DomainMicros a, DomainMicros b) {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(DomainMicros a, DomainMicros b) {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(DomainMicros a, DomainMicros b) {
    return a.micros_ < b.micros_;
  }
  friend constexpr bool operator<=(DomainMicros a, DomainMicros b) {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(DomainMicros a, DomainMicros b) {
    return a.micros_ > b.micros_;
  }
  friend constexpr bool operator>=(DomainMicros a, DomainMicros b) {
    return a.micros_ >= b.micros_;
  }

  // point +/- duration -> point.
  friend constexpr DomainMicros operator+(DomainMicros t, TimestampMicros d) {
    return DomainMicros(t.micros_ + d);
  }
  friend constexpr DomainMicros operator+(TimestampMicros d, DomainMicros t) {
    return DomainMicros(t.micros_ + d);
  }
  friend constexpr DomainMicros operator-(DomainMicros t, TimestampMicros d) {
    return DomainMicros(t.micros_ - d);
  }

  // point - point -> duration (same domain only; a DomainMicros of the
  // other tag neither matches this overload nor converts to the raw
  // TimestampMicros one above).
  friend constexpr TimestampMicros operator-(DomainMicros a, DomainMicros b) {
    return a.micros_ - b.micros_;
  }

  DomainMicros& operator+=(TimestampMicros d) {
    micros_ += d;
    return *this;
  }

 private:
  explicit constexpr DomainMicros(TimestampMicros micros) : micros_(micros) {}

  TimestampMicros micros_ = 0;
};

namespace clock_domain {
struct WallTag {};
struct SteadyTag {};
}  // namespace clock_domain

/// A point on the wall clock: event time, enqueue time, TTL expiry.
/// May step with NTP/operator adjustments; safe to persist.
using WallMicros = DomainMicros<clock_domain::WallTag>;

/// A point on the monotonic clock: deadlines, timeouts, throttles.
/// Never steps; its epoch is process-local, so it must NOT be persisted
/// (RebuildRuntimeLocked in mq/queue_manager.cc shows the sanctioned
/// wall->steady span conversion for rows that survive a restart).
using SteadyMicros = DomainMicros<clock_domain::SteadyTag>;

/// Abstract time source. Production code uses SystemClock; tests and
/// benchmarks use SimulatedClock so windowing, expiration and visibility
/// timeouts are deterministic.
///
/// Two time domains (DESIGN.md §11):
///   - NowMicros() is WALL time: what gets stored in data (event
///     timestamps, enqueue_time, TTL expiry). It may step forward or
///     backward (NTP, operator adjustment, SimulatedClock::SetMicros).
///   - SteadyNowMicros() is MONOTONIC time: what deadlines and
///     timeouts are computed from (visibility timeouts, redelivery,
///     DequeueWait). It never goes backward and is unaffected by wall
///     steps; its epoch is arbitrary and NOT comparable across
///     processes, so steady values must never be persisted.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current wall time in microseconds (raw primitive — data paths
  /// stamping persisted timestamps may use it directly; deadline code
  /// must go through WallNow()/SteadyNow() so the domain is typed).
  virtual TimestampMicros NowMicros() = 0;

  /// Current monotonic time in microseconds (raw primitive). Defaults
  /// to the host steady clock; SimulatedClock layers manual advances on
  /// top.
  virtual TimestampMicros SteadyNowMicros();

  /// Typed now(): the sanctioned API for any code that stores, compares
  /// or does arithmetic on time points. scripts/analyze.py's
  /// clock-domain check flags raw NowMicros() values flowing into
  /// deadline arithmetic; these wrappers are how to satisfy it.
  WallMicros WallNow() { return WallMicros::FromMicros(NowMicros()); }
  SteadyMicros SteadyNow() {
    return SteadyMicros::FromMicros(SteadyNowMicros());
  }

  /// Advances time by `micros` (both domains). No-op for real clocks.
  virtual void AdvanceMicros(TimestampMicros micros) = 0;
};

/// Wall-clock time from std::chrono::system_clock.
class SystemClock : public Clock {
 public:
  TimestampMicros NowMicros() override;
  void AdvanceMicros(TimestampMicros /*micros*/) override {}

  /// Process-wide shared instance.
  static SystemClock* Default();
};

/// Deterministic, manually advanced clock.
///
/// The wall domain (NowMicros) is fully manual: AdvanceMicros moves it,
/// SetMicros steps it (modelling an NTP/operator wall-clock jump). The
/// steady domain (SteadyNowMicros) is hybrid: manual advances PLUS real
/// host-steady time elapsed since construction, so real-time waits
/// (DequeueWait timeouts, CV slices) still make progress in tests that
/// never touch the clock — and SetMicros, being a wall step, does not
/// move it at all.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimestampMicros start_micros = 0)
      : now_(start_micros),
        steady_offset_(0),
        born_(std::chrono::steady_clock::now()) {}

  TimestampMicros NowMicros() override {
    return now_.load(std::memory_order_relaxed);
  }
  TimestampMicros SteadyNowMicros() override {
    return steady_offset_.load(std::memory_order_relaxed) +
           HostElapsedMicros();
  }
  void AdvanceMicros(TimestampMicros micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
    steady_offset_.fetch_add(micros, std::memory_order_relaxed);
  }
  /// Steps the WALL clock only; the steady domain is unaffected.
  void SetMicros(TimestampMicros micros) {
    now_.store(micros, std::memory_order_relaxed);
  }

 private:
  TimestampMicros HostElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - born_)
        .count();
  }

  std::atomic<TimestampMicros> now_;
  std::atomic<TimestampMicros> steady_offset_;
  const std::chrono::steady_clock::time_point born_;
};

/// Formats a timestamp as "YYYY-MM-DD HH:MM:SS.mmmmmm" (UTC).
std::string FormatTimestamp(TimestampMicros ts);

}  // namespace edadb

#endif  // EDADB_COMMON_CLOCK_H_
