#ifndef EDADB_COMMON_CLOCK_H_
#define EDADB_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace edadb {

/// Microseconds since the Unix epoch (or since simulation start for
/// simulated clocks). All event timestamps in the library use this unit.
using TimestampMicros = int64_t;

constexpr TimestampMicros kMicrosPerMilli = 1000;
constexpr TimestampMicros kMicrosPerSecond = 1000 * 1000;
constexpr TimestampMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr TimestampMicros kMicrosPerHour = 60 * kMicrosPerMinute;

/// Abstract time source. Production code uses SystemClock; tests and
/// benchmarks use SimulatedClock so windowing, expiration and visibility
/// timeouts are deterministic.
///
/// Two time domains (DESIGN.md §11):
///   - NowMicros() is WALL time: what gets stored in data (event
///     timestamps, enqueue_time, TTL expiry). It may step forward or
///     backward (NTP, operator adjustment, SimulatedClock::SetMicros).
///   - SteadyNowMicros() is MONOTONIC time: what deadlines and
///     timeouts are computed from (visibility timeouts, redelivery,
///     DequeueWait). It never goes backward and is unaffected by wall
///     steps; its epoch is arbitrary and NOT comparable across
///     processes, so steady values must never be persisted.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current wall time in microseconds.
  virtual TimestampMicros NowMicros() = 0;

  /// Current monotonic time in microseconds. Defaults to the host
  /// steady clock; SimulatedClock layers manual advances on top.
  virtual TimestampMicros SteadyNowMicros();

  /// Advances time by `micros` (both domains). No-op for real clocks.
  virtual void AdvanceMicros(TimestampMicros micros) = 0;
};

/// Wall-clock time from std::chrono::system_clock.
class SystemClock : public Clock {
 public:
  TimestampMicros NowMicros() override;
  void AdvanceMicros(TimestampMicros /*micros*/) override {}

  /// Process-wide shared instance.
  static SystemClock* Default();
};

/// Deterministic, manually advanced clock.
///
/// The wall domain (NowMicros) is fully manual: AdvanceMicros moves it,
/// SetMicros steps it (modelling an NTP/operator wall-clock jump). The
/// steady domain (SteadyNowMicros) is hybrid: manual advances PLUS real
/// host-steady time elapsed since construction, so real-time waits
/// (DequeueWait timeouts, CV slices) still make progress in tests that
/// never touch the clock — and SetMicros, being a wall step, does not
/// move it at all.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimestampMicros start_micros = 0)
      : now_(start_micros),
        steady_offset_(0),
        born_(std::chrono::steady_clock::now()) {}

  TimestampMicros NowMicros() override {
    return now_.load(std::memory_order_relaxed);
  }
  TimestampMicros SteadyNowMicros() override {
    return steady_offset_.load(std::memory_order_relaxed) +
           HostElapsedMicros();
  }
  void AdvanceMicros(TimestampMicros micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
    steady_offset_.fetch_add(micros, std::memory_order_relaxed);
  }
  /// Steps the WALL clock only; the steady domain is unaffected.
  void SetMicros(TimestampMicros micros) {
    now_.store(micros, std::memory_order_relaxed);
  }

 private:
  TimestampMicros HostElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - born_)
        .count();
  }

  std::atomic<TimestampMicros> now_;
  std::atomic<TimestampMicros> steady_offset_;
  const std::chrono::steady_clock::time_point born_;
};

/// Formats a timestamp as "YYYY-MM-DD HH:MM:SS.mmmmmm" (UTC).
std::string FormatTimestamp(TimestampMicros ts);

}  // namespace edadb

#endif  // EDADB_COMMON_CLOCK_H_
