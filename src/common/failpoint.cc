#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/random.h"

namespace edadb {
namespace failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct ArmedState {
  Action action;
  uint64_t hits_seen = 0;  // Hits since arming (drives `skip`).
  int64_t fires = 0;       // Fires since arming (drives `max_fires`).
};

/// All registry state behind one leaf mutex. Fire() runs while callers
/// hold subsystem locks (Database::mu_, QueueManager::mu_, ...), so the
/// registry must never acquire anything else while holding mu.
struct Registry {
  Mutex mu{"failpoint::Registry::mu"};
  std::map<std::string, ArmedState> armed EDADB_GUARDED_BY(mu);
  std::map<std::string, uint64_t> hits EDADB_GUARDED_BY(mu);
  Random rng EDADB_GUARDED_BY(mu){0xEDADBFA11};
  std::function<void(const char*)> crash_handler EDADB_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // lint:allow(raw-new-delete): intentional leak, outlives tests
  return *registry;
}

}  // namespace

void Arm(const std::string& name, Action action) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  auto [it, inserted] = reg.armed.insert_or_assign(name, ArmedState{});
  // The stored status is payload, not an outcome owed to a caller:
  // acknowledge it to the EDADB_CHECK_STATUS detector both before the
  // overwrite (the freshly planted default Action carries an
  // unexamined error) and after (so re-arms and Disarm/DisarmAll pass).
  it->second.action.status.PermitUncheckedError();
  it->second.action = std::move(action);
  it->second.action.status.PermitUncheckedError();
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& name) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  if (reg.armed.erase(name) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  internal::g_armed_count.fetch_sub(static_cast<int>(reg.armed.size()),
                                    std::memory_order_relaxed);
  reg.armed.clear();
}

void SetSeed(uint64_t seed) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  reg.rng = Random(seed);
}

void SetCrashHandler(std::function<void(const char*)> handler) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  reg.crash_handler = std::move(handler);
}

void Crash(const char* site) {
  std::function<void(const char*)> handler;
  {
    Registry& reg = GetRegistry();
    MutexLock lock(&reg.mu);
    handler = reg.crash_handler;
  }
  if (handler) {
    handler(site);  // Typically throws testing::SimulatedCrash.
    return;         // A handler may decline to die (e.g. counting-only).
  }
  std::abort();
}

FireResult Fire(const char* name) {
  FireResult result;
  int64_t delay_micros = 0;
  {
    Registry& reg = GetRegistry();
    MutexLock lock(&reg.mu);
    ++reg.hits[name];
    auto it = reg.armed.find(name);
    if (it == reg.armed.end()) return result;
    ArmedState& state = it->second;
    ++state.hits_seen;
    if (state.hits_seen <= state.action.skip) return result;
    if (state.action.max_fires >= 0 && state.fires >= state.action.max_fires) {
      return result;
    }
    if (state.action.probability < 1.0 &&
        reg.rng.NextDouble() >= state.action.probability) {
      return result;
    }
    ++state.fires;
    result.fired = true;
    result.kind = state.action.kind;
    result.arg = state.action.arg;
    if (state.action.kind == ActionKind::kReturnStatus) {
      result.status = state.action.status;
    } else if (state.action.kind == ActionKind::kDelay) {
      delay_micros = state.action.arg;
    }
  }
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));  // lint:allow(raw-sleep): kDelay injects real latency by contract; routing it through Clock would let a SimulatedClock erase the very delay a schedule asked for
  }
  return result;
}

uint64_t HitCount(const std::string& name) {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  auto it = reg.hits.find(name);
  return it == reg.hits.end() ? 0 : it->second;
}

void ResetHitCounts() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  reg.hits.clear();
}

std::vector<std::string> ArmedSites() {
  Registry& reg = GetRegistry();
  MutexLock lock(&reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.armed.size());
  for (const auto& [name, state] : reg.armed) names.push_back(name);
  return names;
}

}  // namespace failpoint
}  // namespace edadb
