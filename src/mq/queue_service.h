#ifndef EDADB_MQ_QUEUE_SERVICE_H_
#define EDADB_MQ_QUEUE_SERVICE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "mq/message.h"

namespace edadb {

/// Per-queue policy (§2.2.b operational characteristics).
struct QueueCreateOptions {
  /// Deliveries to one group before the message is dead-lettered.
  int64_t max_deliveries = 5;
  /// How long a dequeued-but-unacked message stays invisible before it
  /// is redelivered (crash/timeout recovery for consumers).
  TimestampMicros visibility_timeout_micros = 30 * kMicrosPerSecond;
  /// Where poisoned/expired messages go; empty = drop them. A sharded
  /// service co-locates the queue with its dead-letter queue so
  /// dead-lettering never crosses a shard boundary.
  std::string dead_letter_queue;
};

struct EnqueueRequest {
  std::string payload;
  AttributeList attributes;
  int64_t priority = 0;
  TimestampMicros delay_micros = 0;  // Visible after now + delay.
  TimestampMicros ttl_micros = 0;    // 0 = never expires.
  std::string correlation_id;
};

struct DequeueRequest {
  /// Consumer group; "" is the implicit default group.
  std::string group;
  /// Optional selector over MessageView attributes, e.g.
  /// "severity >= 3 AND region = 'east'".
  std::optional<Predicate> selector;
};

/// The staging-area surface shared by the single-domain QueueManager and
/// the sharded ShardRouter. Producers and consumers (the broker, the
/// propagator, responders, application code) program against this
/// interface; whether a queue name resolves to one lock domain or one of
/// N shards — each with its own WAL stream, commit pipeline and
/// dispatcher pool — is the implementation's business.
///
/// Semantics every implementation must provide: per-consumer-group
/// at-least-once delivery with visibility timeouts; all-or-nothing batch
/// enqueue; `EnqueueDedup` as the exactly-once-visible cross-shard
/// handoff primitive. See mq/queue_manager.h for the per-call contracts.
class QueueService {
 public:
  virtual ~QueueService() = default;

  EDADB_NODISCARD virtual Status CreateQueue(
      const std::string& name, QueueCreateOptions options = {}) = 0;
  EDADB_NODISCARD virtual Status DropQueue(const std::string& name) = 0;
  virtual bool HasQueue(const std::string& name) const = 0;
  virtual std::vector<std::string> ListQueues() const = 0;

  EDADB_NODISCARD virtual Status AddConsumerGroup(const std::string& queue,
                                                  const std::string& group) = 0;
  EDADB_NODISCARD virtual Status RemoveConsumerGroup(
      const std::string& queue, const std::string& group) = 0;
  EDADB_NODISCARD virtual Result<std::vector<std::string>> ListConsumerGroups(
      const std::string& queue) const = 0;

  EDADB_NODISCARD virtual Result<MessageId> Enqueue(
      const std::string& queue, const EnqueueRequest& request) = 0;
  EDADB_NODISCARD virtual Result<std::vector<MessageId>> EnqueueBatch(
      const std::string& queue,
      const std::vector<EnqueueRequest>& requests) = 0;

  /// Idempotent enqueue: stages the message and consumes `dedup_key` in
  /// ONE transaction against the queue's own commit pipeline. A key can
  /// only ever be consumed once — a retry after a crash that did commit
  /// returns nullopt (already delivered; nothing enqueued) instead of a
  /// second copy. This is the receiving half of the cross-shard handoff
  /// protocol: the sender may die between the destination commit and its
  /// own source-side ack, retry, and still produce exactly one visible
  /// message.
  EDADB_NODISCARD virtual Result<std::optional<MessageId>> EnqueueDedup(
      const std::string& queue, const EnqueueRequest& request,
      const std::string& dedup_key) = 0;

  EDADB_NODISCARD virtual Result<std::optional<Message>> Dequeue(
      const std::string& queue, const DequeueRequest& request) = 0;
  EDADB_NODISCARD virtual Result<std::vector<Message>> DequeueBatch(
      const std::string& queue, const DequeueRequest& request,
      size_t max_messages) = 0;
  EDADB_NODISCARD virtual Result<std::optional<Message>> DequeueWait(
      const std::string& queue, const DequeueRequest& request,
      TimestampMicros timeout_micros) = 0;

  EDADB_NODISCARD virtual Status Ack(const std::string& queue,
                                     const std::string& group,
                                     MessageId id) = 0;
  EDADB_NODISCARD virtual Status Nack(
      const std::string& queue, const std::string& group, MessageId id,
      TimestampMicros redeliver_delay_micros = 0) = 0;

  EDADB_NODISCARD virtual Result<size_t> Depth(
      const std::string& queue, const std::string& group) const = 0;
  EDADB_NODISCARD virtual Result<size_t> PurgeExpired(
      const std::string& queue) = 0;
  EDADB_NODISCARD virtual Result<Message> Peek(const std::string& queue,
                                               MessageId id) const = 0;
  EDADB_NODISCARD virtual Status Browse(
      const std::string& queue, const std::string& group,
      const std::function<bool(const Message&)>& fn) const = 0;

  /// Wakes blocked waiters and fails subsequent waits fast with Aborted.
  virtual void Shutdown() = 0;

  /// Shard ordinal that owns `queue` (where it lives now, or where it
  /// would be placed). A single-domain service is its own one shard.
  virtual size_t ShardOf(const std::string& queue) const = 0;
  virtual size_t num_shards() const = 0;
};

}  // namespace edadb

#endif  // EDADB_MQ_QUEUE_SERVICE_H_
