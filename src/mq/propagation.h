#ifndef EDADB_MQ_PROPAGATION_H_
#define EDADB_MQ_PROPAGATION_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "mq/message.h"
#include "mq/queue_service.h"

namespace edadb {

/// A downstream delivery target outside the database (§2.2.d.ii.2
/// "forwarding messages to external services").
class ExternalService {
 public:
  virtual ~ExternalService() = default;

  virtual const std::string& name() const = 0;

  /// Delivers one message; non-OK means the propagator will retry
  /// (Nack) per queue policy.
  EDADB_NODISCARD virtual Status Deliver(const Message& message) = 0;
};

/// Test/bench stand-in for a real endpoint: injects latency and
/// failures, and records what it received. The paper's external
/// consumers (alerting gateways, first-responder devices) are simulated
/// with this. Thread-safe.
class SimulatedExternalService : public ExternalService {
 public:
  struct Options {
    /// Probability in [0,1] that a delivery fails (transient).
    double failure_probability = 0.0;
    /// Simulated processing latency added per delivery (advances the
    /// injected clock if one is supplied; never sleeps).
    TimestampMicros latency_micros = 0;
    /// Keep at most this many delivered messages for inspection.
    size_t keep_last = 1024;
  };

  SimulatedExternalService(std::string name, Options options, Clock* clock,
                           uint64_t seed = 42);

  const std::string& name() const override { return name_; }
  EDADB_NODISCARD Status Deliver(const Message& message) override;

  uint64_t delivered_count() const;
  uint64_t failed_count() const;
  std::vector<Message> delivered() const;

 private:
  const std::string name_;
  const Options options_;
  Clock* const clock_;
  mutable Mutex mu_{"SimulatedExternalService::mu_"};
  Random rng_ EDADB_GUARDED_BY(mu_);
  uint64_t delivered_count_ EDADB_GUARDED_BY(mu_) = 0;
  uint64_t failed_count_ EDADB_GUARDED_BY(mu_) = 0;
  std::vector<Message> recent_ EDADB_GUARDED_BY(mu_);
};

/// One forwarding route from a staging area to another staging area or
/// an external service (§2.2.d.ii "distribution of messages").
struct PropagationRule {
  std::string name;
  std::string source_queue;
  /// Consumer group the propagator consumes as (registered on demand as
  /// an explicit group when non-empty).
  std::string source_group;
  /// Messages failing the filter are consumed and dropped — propagation
  /// is where "non-critical data is filtered out".
  std::optional<Predicate> filter;
  /// Exactly one destination: a queue name, or an external service.
  std::string destination_queue;
  ExternalService* external = nullptr;
  /// Optional rewrite applied before forwarding; identity by default.
  std::function<EnqueueRequest(const Message&)> transform;
};

/// Pumps messages along its rules. Single-threaded driving model: call
/// RunOnce() from a scheduler loop; each call drains every rule's source
/// queue. Failures Nack the message so queue redelivery policy (and the
/// dead-letter queue) applies.
///
/// Cross-shard handoff: when source and destination queues live on
/// different shards, the destination enqueue goes through the target
/// shard's own commit pipeline via EnqueueDedup, keyed by (rule,
/// source message id). The source-side ack happens after the
/// destination commit, so a crash between the two replays the message —
/// and the consumed dedup key makes the replay a no-op: at-least-once
/// transport, exactly-once visibility.
class Propagator {
 public:
  explicit Propagator(QueueService* queues) : queues_(queues) {}

  EDADB_NODISCARD Status AddRule(PropagationRule rule);
  EDADB_NODISCARD Status RemoveRule(const std::string& name);
  std::vector<std::string> ListRules() const;

  struct RuleStats {  // lint:allow(adhoc-stats): per-rule counts, queried by rule name
    uint64_t forwarded = 0;
    uint64_t dropped = 0;   // Failed the filter.
    uint64_t failed = 0;    // Destination rejected; nacked.
  };

  /// Drains every rule once; returns total messages forwarded.
  EDADB_NODISCARD Result<size_t> RunOnce();

  EDADB_NODISCARD Result<RuleStats> GetStats(const std::string& name) const;

 private:
  QueueService* const queues_;
  mutable Mutex mu_{"Propagator::mu_"};
  std::map<std::string, PropagationRule> rules_ EDADB_GUARDED_BY(mu_);
  std::map<std::string, RuleStats> stats_ EDADB_GUARDED_BY(mu_);
};

}  // namespace edadb

#endif  // EDADB_MQ_PROPAGATION_H_
