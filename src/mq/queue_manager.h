#ifndef EDADB_MQ_QUEUE_MANAGER_H_
#define EDADB_MQ_QUEUE_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"
#include "expr/predicate.h"
#include "mq/message.h"
#include "mq/queue_service.h"

namespace edadb {

/// Message staging areas persisted in database tables (§2.2.b "support
/// of message storage"). Every queue is two tables — message bodies and
/// per-consumer-group delivery state — so messages inherit the
/// database's operational characteristics: WAL recoverability,
/// transactional enqueue, auditing via the journal.
///
/// Delivery semantics per consumer group: at-least-once with visibility
/// timeouts; redelivery increments delivery_count; after
/// max_deliveries the message moves to the dead-letter queue.
///
/// Thread-safe. Dequeue/Ack/Nack serialize on an internal mutex;
/// enqueues only take the database's own locks and wake blocked
/// DequeueWait() callers.
///
/// One QueueManager is one delivery shard: one database (WAL stream +
/// commit pipeline), one lock domain, one wait/wake domain. The sharded
/// deployment (mq/shard_router.h) composes N of these; `shard` is this
/// manager's ordinal there (0 for a standalone manager) and prefixes its
/// per-shard metrics (`shard.<i>.*`).
class QueueManager : public QueueService {
 public:
  /// `db` must outlive the manager. Existing queues (from a previous
  /// run of the same database directory) are reattached.
  EDADB_NODISCARD static Result<std::unique_ptr<QueueManager>> Attach(
      Database* db, size_t shard = 0);

  EDADB_NODISCARD Status CreateQueue(const std::string& name,
                     QueueCreateOptions options = {}) override;
  EDADB_NODISCARD Status DropQueue(const std::string& name) override;
  bool HasQueue(const std::string& name) const override;
  std::vector<std::string> ListQueues() const override;

  /// Consumer groups ("subscribers" in AQ terms). A queue always has the
  /// implicit "" group until the first explicit group is added; after
  /// that, enqueued messages fan out to every registered group.
  EDADB_NODISCARD Status AddConsumerGroup(const std::string& queue,
                                          const std::string& group) override;
  EDADB_NODISCARD Status RemoveConsumerGroup(const std::string& queue,
                             const std::string& group) override;
  EDADB_NODISCARD Result<std::vector<std::string>> ListConsumerGroups(
      const std::string& queue) const override;

  /// Stages a message (the tutorial's "extended INSERT interface").
  /// Thin wrapper over a one-element EnqueueBatch (single code path).
  EDADB_NODISCARD Result<MessageId> Enqueue(
      const std::string& queue, const EnqueueRequest& request) override;

  /// Stages N messages as ONE transaction — one WAL barrier, one group
  /// of AFTER triggers — so either every message becomes visible or
  /// none does (all-or-nothing; per-message ack semantics unchanged).
  /// Returns the MessageIds in request order. This is the batch-first
  /// ingest fast path: under WalSyncPolicy::kOnCommit the whole batch
  /// pays one fdatasync instead of N.
  EDADB_NODISCARD Result<std::vector<MessageId>> EnqueueBatch(
      const std::string& queue,
      const std::vector<EnqueueRequest>& requests) override;

  /// Idempotent enqueue (see QueueService::EnqueueDedup): one
  /// transaction consumes `dedup_key` in the __handoff ledger (unique
  /// index) and stages the message; a consumed key aborts the commit
  /// before it reaches the WAL and reports nullopt.
  EDADB_NODISCARD Result<std::optional<MessageId>> EnqueueDedup(
      const std::string& queue, const EnqueueRequest& request,
      const std::string& dedup_key) override;

  /// Transactional enqueue: the message becomes visible only when `txn`
  /// commits (§2.2.b.ii.3 "transactional support").
  EDADB_NODISCARD Result<MessageId> EnqueueInTransaction(Transaction* txn,
                                         const std::string& queue,
                                         const EnqueueRequest& request);

  /// Takes the highest-priority visible message matching the selector,
  /// locking it for the group's visibility timeout. nullopt = queue
  /// empty (for this group/selector). Thin wrapper over
  /// DequeueBatch(..., 1).
  EDADB_NODISCARD Result<std::optional<Message>> Dequeue(
      const std::string& queue, const DequeueRequest& request) override;

  /// Batch dequeue: takes up to `max_messages` deliverable messages in
  /// dequeue order under one runtime lock. Each message is locked for
  /// the visibility timeout individually — acks/nacks stay per-message,
  /// so a consumer can ack some of a batch and nack the rest. Fewer
  /// than `max_messages` (possibly zero) are returned when the queue
  /// runs dry.
  EDADB_NODISCARD Result<std::vector<Message>> DequeueBatch(
      const std::string& queue, const DequeueRequest& request,
      size_t max_messages) override;

  /// Blocking dequeue; waits up to `timeout_micros` for a message.
  /// Returns Aborted once Shutdown() has been called. The timeout is
  /// measured in the clock's steady domain (a wall-clock step neither
  /// shortens nor extends it). Contract for `timeout_micros <= 0`:
  /// exactly one non-blocking dequeue attempt — never waits.
  EDADB_NODISCARD Result<std::optional<Message>> DequeueWait(
      const std::string& queue, const DequeueRequest& request,
      TimestampMicros timeout_micros) override;

  /// Monotonic count of wake-worthy activity (delivery inserts, nacks,
  /// shutdown, explicit wakes). Poll-free consumers capture it before
  /// draining and pass it to WaitForActivity to close the race where a
  /// message arrives between an empty drain and the wait.
  uint64_t activity_seq() const {
    return activity_seq_.load(std::memory_order_acquire);
  }

  /// Blocks until activity_seq() != last_seen_seq, Shutdown(), or the
  /// timeout (steady domain) elapses. Returns true when woken by
  /// activity or shutdown, false on timeout. Spurious true returns are
  /// possible; callers re-drain and wait again.
  bool WaitForActivity(uint64_t last_seen_seq, TimestampMicros timeout_micros);

  /// Wakes every blocked DequeueWait/WaitForActivity caller without
  /// shutting down (they re-check their conditions). For cooperating
  /// drivers (the dispatcher) stopping their own loops.
  void WakeWaiters();

  /// Wakes every blocked DequeueWait() caller and makes subsequent
  /// waits fail fast with Aborted. Call before destroying the manager
  /// while consumer threads may still be blocked; non-blocking
  /// operations keep working (drain-then-stop shutdowns).
  void Shutdown() override;

  /// Completes consumption. When every group has acked, the message row
  /// is removed.
  EDADB_NODISCARD Status Ack(const std::string& queue, const std::string& group,
             MessageId id) override;

  /// Returns the message to the queue after `redeliver_delay_micros`
  /// (dead-letters it if max_deliveries is exhausted).
  EDADB_NODISCARD Status Nack(const std::string& queue,
              const std::string& group, MessageId id,
              TimestampMicros redeliver_delay_micros = 0) override;

  /// Ready (visible, unlocked) messages for `group`.
  EDADB_NODISCARD Result<size_t> Depth(const std::string& queue,
                       const std::string& group) const override;

  /// Removes expired messages; returns how many were purged (moved to
  /// the dead-letter queue when configured).
  EDADB_NODISCARD Result<size_t> PurgeExpired(const std::string& queue) override;

  /// Reads a staged message without consuming it.
  EDADB_NODISCARD Result<Message> Peek(const std::string& queue,
                                       MessageId id) const override;

  /// Non-destructive browse (AQ's browse mode): visits every message
  /// currently deliverable to `group` in dequeue order without locking
  /// or consuming anything. Return false from `fn` to stop early.
  EDADB_NODISCARD Status Browse(const std::string& queue, const std::string& group,
                const std::function<bool(const Message&)>& fn) const override;

  /// A standalone manager is its own single shard.
  size_t ShardOf(const std::string& /*queue*/) const override {
    return shard_;
  }
  size_t num_shards() const override { return 1; }
  size_t shard() const { return shard_; }

  Database* db() const { return db_; }

 private:
  QueueManager(Database* db, size_t shard);

  /// Cached metadata for a live message. `expires_at` is TTL data:
  /// wall-domain by design (micros()==0 = never expires).
  struct MsgMeta {
    int64_t priority = 0;
    WallMicros expires_at;
  };

  /// One group's live delivery of a message.
  struct DelivState {
    RowId deliv_row = 0;
    int64_t delivery_count = 0;
  };

  /// In-memory dequeue index per consumer group. The database tables are
  /// authoritative (and rebuild this on Attach); the runtime makes
  /// Dequeue O(log n) instead of a table scan.
  ///
  /// Clock domains: the `locked` and `delayed` deadlines here live in
  /// the clock's STEADY domain so a wall-clock step can neither
  /// prematurely redeliver an in-flight message (step forward) nor
  /// stall redelivery (step back). The SteadyMicros strong type makes
  /// that a compile-time fact. The persisted delivery rows keep WALL
  /// timestamps — steady epochs do not survive a process — and are
  /// converted on load (RebuildRuntimeLocked).
  struct GroupRuntime {
    /// Deliverable now, ordered by (-priority, message id).
    std::set<std::pair<int64_t, MessageId>> ready;
    /// Dequeued and invisible until the mapped steady-domain deadline.
    std::map<MessageId, SteadyMicros> locked;
    /// Delayed delivery: steady-domain visibility time -> message id.
    std::multimap<SteadyMicros, MessageId> delayed;
    /// All live deliveries for this group.
    std::map<MessageId, DelivState> deliveries;
  };

  struct QueueState {
    QueueCreateOptions options;
    std::set<std::string> explicit_groups;
    std::map<std::string, GroupRuntime> runtime;  // Keyed by group.
    std::map<MessageId, MsgMeta> messages;
  };

  static std::string MsgTableName(const std::string& queue);
  static std::string DelivTableName(const std::string& queue);

  EDADB_NODISCARD Status EnsureMetaTables();
  EDADB_NODISCARD Status ReloadFromMeta();

  /// Creates the per-queue tables and registers the AFTER INSERT
  /// triggers that feed the runtime (so transactional enqueues become
  /// visible exactly at commit).
  EDADB_NODISCARD Status CreateQueueStorage(const std::string& name);
  EDADB_NODISCARD Status RegisterQueueTriggers(const std::string& name);

  /// Trigger callbacks (take mu_; recursive because dead-lettering
  /// enqueues while holding it).
  void OnMessageInserted(const std::string& queue, MessageId id,
                         const Record& row);
  void OnDeliveryInserted(const std::string& queue, RowId deliv_row,
                          const Record& row);

  EDADB_NODISCARD Result<Record> BuildMessageRecord(const std::string& queue,
                                    const EnqueueRequest& request,
                                    WallMicros now) const;

  /// Shared implementation behind Enqueue and EnqueueBatch (pointer +
  /// count instead of a vector so the single-message wrapper needs no
  /// copy; C++17 has no std::span).
  EDADB_NODISCARD Result<std::vector<MessageId>> EnqueueSpan(
      const std::string& queue, const EnqueueRequest* requests, size_t count);

  /// Effective groups for fanout (the implicit "" group when none
  /// registered).
  static std::vector<std::string> EffectiveGroups(const QueueState& state);

  EDADB_NODISCARD Result<Message> LoadMessage(const std::string& queue, MessageId id) const;

  /// Rebuilds one queue's runtime from its tables (Attach path).
  EDADB_NODISCARD Status RebuildRuntimeLocked(const std::string& name, QueueState* state)
      EDADB_REQUIRES(mu_);

  /// Moves due delayed messages and expired locks back to ready.
  void Promote(QueueState* state, GroupRuntime* rt,
               SteadyMicros steady_now) EDADB_REQUIRES(mu_);

  /// Bumps activity_seq_ (all mutations happen under mu_ so waiters
  /// cannot miss a wake between their check and their wait).
  void BumpActivityLocked() EDADB_REQUIRES(mu_) {
    activity_seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Copies the message to the dead-letter queue (when configured) and
  /// finishes this group's delivery. Re-enters mu_ through Enqueue,
  /// which is why mu_ is recursive.
  EDADB_NODISCARD Status DeadLetter(const std::string& queue, QueueState* state,
                    const std::string& group, MessageId id,
                    const std::string& reason) EDADB_REQUIRES(mu_);

  /// Deletes one group's delivery row; when no group still holds a
  /// delivery, the message row is removed too.
  EDADB_NODISCARD Status FinishDelivery(const std::string& queue, QueueState* state,
                        const std::string& group, MessageId id)
      EDADB_REQUIRES(mu_);

  Database* const db_;
  Clock* const clock_;
  /// Ordinal in a sharded deployment; names this manager's shard.<i>.*
  /// metrics. 0 for standalone managers.
  const size_t shard_;

  /// Per-shard hot-path instruments (shard.<i>.enqueues etc.), resolved
  /// once at Attach; registry-owned, so raw pointers stay valid.
  metrics::Counter* shard_enqueues_ = nullptr;
  metrics::Counter* shard_dequeues_ = nullptr;
  metrics::Counter* shard_handoffs_ = nullptr;
  metrics::Histogram* shard_commit_latency_ = nullptr;

  /// Lock order: QueueDispatcher::mu_ before this, this before the
  /// database's internal locks. Recursive: enqueue -> commit -> AFTER
  /// trigger -> On*Inserted re-enter while Dead-lettering holds it.
  mutable RecursiveMutex mu_{"QueueManager::mu_"};
  CondVar enqueue_cv_;
  std::map<std::string, QueueState> queues_ EDADB_GUARDED_BY(mu_);
  bool shutdown_ EDADB_GUARDED_BY(mu_) = false;

  /// Bumped (under mu_) on every wake-worthy event; read lock-free.
  std::atomic<uint64_t> activity_seq_{0};

  /// Emits mq.queue.<name>.depth/.inflight gauges at snapshot time.
  /// Last member: destroyed first, so an in-flight collector (which
  /// takes mu_) finishes before the rest of the manager tears down.
  metrics::CallbackHandle metrics_collector_;
};

}  // namespace edadb

#endif  // EDADB_MQ_QUEUE_MANAGER_H_
