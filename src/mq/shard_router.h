#ifndef EDADB_MQ_SHARD_ROUTER_H_
#define EDADB_MQ_SHARD_ROUTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"
#include "mq/dispatcher.h"
#include "mq/queue_manager.h"
#include "mq/queue_service.h"

namespace edadb {

/// Hash-routes queue names over N delivery shards, each a full
/// QueueManager over its own Database — own WAL segment stream
/// (`<data_dir>/wal/shard-<i>`), own commit pipeline and group-commit
/// rendezvous, own lock and wait/wake domain. Shard 0 is the caller's
/// primary database (the one holding rules, audit and system tables);
/// shards 1..N-1 live under `<data_dir>/shard-<i>`. With N == 1 the
/// router is a transparent pass-through over the primary — bytes on
/// disk and returned ids are identical to an unsharded QueueManager.
///
/// Placement: a queue lives on CRC32c(name) % N, except that a queue
/// configured with a dead-letter queue is co-located with it (so
/// dead-lettering, which runs inside one shard's lock domain, never
/// crosses shards). Existing queues keep their shard across restarts
/// regardless of N: reattach reads placement from each shard's own
/// catalog, so changing --shards only affects queues created later.
///
/// Id scheme (N > 1): MessageIds returned by the router carry the
/// owning shard in the top 16 bits — id = (shard+1) << 48 | row_id —
/// so an id alone names its commit pipeline. Ack/Nack/Peek accept
/// tagged ids (verified against the queue's shard) and raw row ids
/// (trusted to the queue's shard: per-shard dispatcher handlers see
/// raw ids).
///
/// Recovery: each shard's Database::Open replays its own WAL stream
/// independently — there is no cross-shard ordering to restore, because
/// the only cross-shard flow (propagation handoff) is at-least-once
/// with an idempotence ledger on the receiving shard (EnqueueDedup).
class ShardRouter : public QueueService {
 public:
  /// `primary` must outlive the router and becomes shard 0; `shards`
  /// further databases are opened (or recovered) under its directory.
  EDADB_NODISCARD static Result<std::unique_ptr<ShardRouter>> Open(
      Database* primary, size_t shards);

  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  EDADB_NODISCARD Status CreateQueue(const std::string& name,
                                     QueueCreateOptions options = {}) override;
  EDADB_NODISCARD Status DropQueue(const std::string& name) override;
  bool HasQueue(const std::string& name) const override;
  std::vector<std::string> ListQueues() const override;

  EDADB_NODISCARD Status AddConsumerGroup(const std::string& queue,
                                          const std::string& group) override;
  EDADB_NODISCARD Status RemoveConsumerGroup(const std::string& queue,
                                             const std::string& group) override;
  EDADB_NODISCARD Result<std::vector<std::string>> ListConsumerGroups(
      const std::string& queue) const override;

  EDADB_NODISCARD Result<MessageId> Enqueue(
      const std::string& queue, const EnqueueRequest& request) override;
  EDADB_NODISCARD Result<std::vector<MessageId>> EnqueueBatch(
      const std::string& queue,
      const std::vector<EnqueueRequest>& requests) override;
  EDADB_NODISCARD Result<std::optional<MessageId>> EnqueueDedup(
      const std::string& queue, const EnqueueRequest& request,
      const std::string& dedup_key) override;

  EDADB_NODISCARD Result<std::optional<Message>> Dequeue(
      const std::string& queue, const DequeueRequest& request) override;
  EDADB_NODISCARD Result<std::vector<Message>> DequeueBatch(
      const std::string& queue, const DequeueRequest& request,
      size_t max_messages) override;
  EDADB_NODISCARD Result<std::optional<Message>> DequeueWait(
      const std::string& queue, const DequeueRequest& request,
      TimestampMicros timeout_micros) override;

  EDADB_NODISCARD Status Ack(const std::string& queue,
                             const std::string& group, MessageId id) override;
  EDADB_NODISCARD Status Nack(const std::string& queue,
                              const std::string& group, MessageId id,
                              TimestampMicros redeliver_delay_micros = 0)
      override;

  EDADB_NODISCARD Result<size_t> Depth(const std::string& queue,
                                       const std::string& group) const override;
  EDADB_NODISCARD Result<size_t> PurgeExpired(const std::string& queue) override;
  EDADB_NODISCARD Result<Message> Peek(const std::string& queue,
                                       MessageId id) const override;
  EDADB_NODISCARD Status Browse(
      const std::string& queue, const std::string& group,
      const std::function<bool(const Message&)>& fn) const override;

  void Shutdown() override;

  size_t ShardOf(const std::string& queue) const override;
  size_t num_shards() const override { return shards_.size(); }

  /// The shard a new queue named `name` would hash to (placement
  /// before dead-letter co-location).
  size_t HashShard(const std::string& name) const;

  /// Per-shard internals, for dispatchers, benches and tests.
  QueueManager* shard_manager(size_t shard) const;
  Database* shard_db(size_t shard) const;
  /// Shard 0's database (compatibility accessor: with N == 1 the
  /// router IS the primary's queue manager).
  Database* db() const { return primary_; }

  /// Bit position of the shard tag in a routed MessageId.
  static constexpr int kShardTagShift = 48;

  /// Applies/strips the shard tag. Identity when N == 1. UntagId
  /// rejects an id tagged for a different shard than `shard` and
  /// passes raw (untagged) ids through unchanged.
  MessageId TagId(size_t shard, MessageId raw) const;
  EDADB_NODISCARD Result<MessageId> UntagId(size_t shard, MessageId id) const;

 private:
  explicit ShardRouter(Database* primary);

  /// One delivery shard: database (WAL + commit pipeline) + queue
  /// manager (lock + wait/wake domain). Shard 0 borrows the primary.
  struct Shard {
    std::unique_ptr<Database> owned_db;  // null for shard 0
    Database* db = nullptr;
    std::unique_ptr<QueueManager> queues;
  };

  /// Placement decision for `name` under `mu_`.
  size_t ShardOfLocked(const std::string& name) const EDADB_REQUIRES(mu_);

  Database* const primary_;
  std::vector<Shard> shards_;

  /// Guards only the placement map; NEVER held across a delegated call
  /// into a shard (shard lock domains stay independent).
  mutable Mutex mu_{"ShardRouter::mu_"};
  std::map<std::string, size_t> queue_shard_ EDADB_GUARDED_BY(mu_);
};

/// Per-shard dispatcher pools behind one Bind/PumpOnce/Start surface:
/// each shard gets its own QueueDispatcher bound to that shard's
/// QueueManager, so worker wakeups are shard-local by construction — a
/// message arriving on shard 2 signals only shard 2's manager, and
/// shard 0's idle workers stay parked.
class ShardedDispatcher {
 public:
  /// `router` must outlive the dispatcher.
  explicit ShardedDispatcher(ShardRouter* router);

  ~ShardedDispatcher();

  ShardedDispatcher(const ShardedDispatcher&) = delete;
  ShardedDispatcher& operator=(const ShardedDispatcher&) = delete;

  /// Binds a handler on the shard owning binding.queue. Handlers see
  /// raw (shard-local) message ids; acking through the binding is
  /// handled by the owning shard's dispatcher.
  EDADB_NODISCARD Status Bind(QueueDispatcher::Binding binding);
  EDADB_NODISCARD Status Unbind(const std::string& queue,
                                const std::string& group);

  /// Drains every shard's bindings once; returns total handled.
  EDADB_NODISCARD Result<size_t> PumpOnce();

  /// Starts `workers_per_shard` activation threads per shard.
  EDADB_NODISCARD Status Start(
      TimestampMicros idle_wait_micros = 50 * kMicrosPerMilli,
      size_t workers_per_shard = 1);

  /// Stops and joins all shards' workers (idempotent).
  void Stop();

  EDADB_NODISCARD Result<QueueDispatcher::BindingStats> GetStats(
      const std::string& queue, const std::string& group) const;

  QueueDispatcher* shard(size_t shard) const;
  size_t num_shards() const { return dispatchers_.size(); }

 private:
  ShardRouter* const router_;
  std::vector<std::unique_ptr<QueueDispatcher>> dispatchers_;
};

}  // namespace edadb

#endif  // EDADB_MQ_SHARD_ROUTER_H_
