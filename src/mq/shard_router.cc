#include "mq/shard_router.h"

#include <cstdlib>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "storage/file.h"

namespace edadb {

namespace {

/// The id tag is 16 bits and value 0 means "raw"; shard counts beyond
/// the tag range (or any sane machine) are configuration errors.
constexpr size_t kMaxShards = 4096;

}  // namespace

ShardRouter::ShardRouter(Database* primary) : primary_(primary) {}

ShardRouter::~ShardRouter() = default;

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(Database* primary,
                                                       size_t shards) {
  if (primary == nullptr) {
    return Status::InvalidArgument("ShardRouter needs a primary database");
  }
  if (shards == 0 || shards > kMaxShards) {
    return Status::InvalidArgument("shard count must be in [1, " +
                                   std::to_string(kMaxShards) + "], got " +
                                   std::to_string(shards));
  }
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter(primary));
  const DatabaseOptions& base = primary->options();
  // Never strand data: if the directory holds more shards than were
  // requested (the deployment was reconfigured downward), open them
  // all — their queues stay reachable, only placement of NEW queues
  // uses the requested count via hashing over every open shard.
  if (auto existing = ListDir(base.dir); existing.ok()) {
    for (const std::string& name : *existing) {
      size_t index = 0;
      if (name.rfind("shard-", 0) == 0) {
        const char* digits = name.c_str() + 6;
        char* end = nullptr;
        index = std::strtoull(digits, &end, 10);
        if (end != digits && *end == '\0' && index + 1 > shards) {
          shards = index + 1;
        }
      }
    }
  }
  if (shards > kMaxShards) {
    return Status::InvalidArgument("directory holds shard ordinals beyond " +
                                   std::to_string(kMaxShards));
  }
  router->shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    Shard shard;
    if (i == 0) {
      shard.db = primary;
    } else {
      // Each secondary shard is a full database with its own WAL
      // stream under the primary's directory; recovery at Open replays
      // that stream independently of every other shard.
      DatabaseOptions options;
      options.dir = base.dir + "/shard-" + std::to_string(i);
      options.wal_dir = base.dir + "/wal/shard-" + std::to_string(i);
      options.wal_sync_policy = base.wal_sync_policy;
      options.wal_segment_size_bytes = base.wal_segment_size_bytes;
      options.clock = base.clock;
      EDADB_ASSIGN_OR_RETURN(shard.owned_db,
                             Database::Open(std::move(options)));
      shard.db = shard.owned_db.get();
    }
    EDADB_ASSIGN_OR_RETURN(shard.queues,
                           QueueManager::Attach(shard.db, /*shard=*/i));
    router->shards_.push_back(std::move(shard));
  }
  // Placement is authoritative in each shard's own catalog: reattach
  // keeps every existing queue on its shard even when the shard count
  // changed since it was created.
  MutexLock lock(&router->mu_);
  for (size_t i = 0; i < router->shards_.size(); ++i) {
    for (const std::string& name : router->shards_[i].queues->ListQueues()) {
      const auto [it, inserted] = router->queue_shard_.emplace(name, i);
      if (!inserted) {
        EDADB_LOG(Warn) << "queue '" << name << "' exists on shard "
                        << it->second << " and shard " << i
                        << "; routing to shard " << it->second;
      }
    }
  }
  return router;
}

size_t ShardRouter::HashShard(const std::string& name) const {
  return Crc32c(name) % shards_.size();
}

size_t ShardRouter::ShardOfLocked(const std::string& name) const {
  const auto it = queue_shard_.find(name);
  if (it != queue_shard_.end()) return it->second;
  return Crc32c(name) % shards_.size();
}

size_t ShardRouter::ShardOf(const std::string& queue) const {
  MutexLock lock(&mu_);
  return ShardOfLocked(queue);
}

QueueManager* ShardRouter::shard_manager(size_t shard) const {
  return shards_[shard].queues.get();
}

Database* ShardRouter::shard_db(size_t shard) const {
  return shards_[shard].db;
}

MessageId ShardRouter::TagId(size_t shard, MessageId raw) const {
  if (shards_.size() == 1) return raw;
  return (static_cast<MessageId>(shard + 1) << kShardTagShift) | raw;
}

Result<MessageId> ShardRouter::UntagId(size_t shard, MessageId id) const {
  if (shards_.size() == 1) return id;
  const uint64_t tag = id >> kShardTagShift;
  if (tag == 0) return id;  // Raw shard-local id (dispatcher handlers).
  if (tag != shard + 1) {
    return Status::InvalidArgument(
        "message id " + std::to_string(id) + " is tagged for shard " +
        std::to_string(tag - 1) + " but its queue lives on shard " +
        std::to_string(shard));
  }
  return id & ((static_cast<MessageId>(1) << kShardTagShift) - 1);
}

Status ShardRouter::CreateQueue(const std::string& name,
                                QueueCreateOptions options) {
  size_t target = 0;
  {
    MutexLock lock(&mu_);
    if (queue_shard_.count(name) > 0) {
      return Status::AlreadyExists("queue '" + name + "' already exists");
    }
    // Dead-lettering runs inside the source queue's lock domain, so a
    // queue is co-located with its dead-letter queue (wherever that
    // lives now, or would hash to).
    target = options.dead_letter_queue.empty()
                 ? ShardOfLocked(name)
                 : ShardOfLocked(options.dead_letter_queue);
  }
  EDADB_RETURN_IF_ERROR(
      shards_[target].queues->CreateQueue(name, std::move(options)));
  MutexLock lock(&mu_);
  queue_shard_[name] = target;
  return Status::OK();
}

Status ShardRouter::DropQueue(const std::string& name) {
  const size_t target = ShardOf(name);
  EDADB_RETURN_IF_ERROR(shards_[target].queues->DropQueue(name));
  MutexLock lock(&mu_);
  queue_shard_.erase(name);
  return Status::OK();
}

bool ShardRouter::HasQueue(const std::string& name) const {
  MutexLock lock(&mu_);
  return queue_shard_.count(name) > 0;
}

std::vector<std::string> ShardRouter::ListQueues() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(queue_shard_.size());
  for (const auto& [name, shard] : queue_shard_) names.push_back(name);
  return names;
}

Status ShardRouter::AddConsumerGroup(const std::string& queue,
                                     const std::string& group) {
  return shards_[ShardOf(queue)].queues->AddConsumerGroup(queue, group);
}

Status ShardRouter::RemoveConsumerGroup(const std::string& queue,
                                        const std::string& group) {
  return shards_[ShardOf(queue)].queues->RemoveConsumerGroup(queue, group);
}

Result<std::vector<std::string>> ShardRouter::ListConsumerGroups(
    const std::string& queue) const {
  return shards_[ShardOf(queue)].queues->ListConsumerGroups(queue);
}

Result<MessageId> ShardRouter::Enqueue(const std::string& queue,
                                       const EnqueueRequest& request) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(MessageId id,
                         shards_[shard].queues->Enqueue(queue, request));
  return TagId(shard, id);
}

Result<std::vector<MessageId>> ShardRouter::EnqueueBatch(
    const std::string& queue, const std::vector<EnqueueRequest>& requests) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(
      std::vector<MessageId> ids,
      shards_[shard].queues->EnqueueBatch(queue, requests));
  for (MessageId& id : ids) id = TagId(shard, id);
  return ids;
}

Result<std::optional<MessageId>> ShardRouter::EnqueueDedup(
    const std::string& queue, const EnqueueRequest& request,
    const std::string& dedup_key) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(
      std::optional<MessageId> id,
      shards_[shard].queues->EnqueueDedup(queue, request, dedup_key));
  if (!id.has_value()) return id;
  return std::optional<MessageId>(TagId(shard, *id));
}

Result<std::optional<Message>> ShardRouter::Dequeue(
    const std::string& queue, const DequeueRequest& request) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(std::optional<Message> message,
                         shards_[shard].queues->Dequeue(queue, request));
  if (message.has_value()) message->id = TagId(shard, message->id);
  return message;
}

Result<std::vector<Message>> ShardRouter::DequeueBatch(
    const std::string& queue, const DequeueRequest& request,
    size_t max_messages) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(
      std::vector<Message> messages,
      shards_[shard].queues->DequeueBatch(queue, request, max_messages));
  for (Message& message : messages) message.id = TagId(shard, message.id);
  return messages;
}

Result<std::optional<Message>> ShardRouter::DequeueWait(
    const std::string& queue, const DequeueRequest& request,
    TimestampMicros timeout_micros) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(
      std::optional<Message> message,
      shards_[shard].queues->DequeueWait(queue, request, timeout_micros));
  if (message.has_value()) message->id = TagId(shard, message->id);
  return message;
}

Status ShardRouter::Ack(const std::string& queue, const std::string& group,
                        MessageId id) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(MessageId raw, UntagId(shard, id));
  return shards_[shard].queues->Ack(queue, group, raw);
}

Status ShardRouter::Nack(const std::string& queue, const std::string& group,
                         MessageId id,
                         TimestampMicros redeliver_delay_micros) {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(MessageId raw, UntagId(shard, id));
  return shards_[shard].queues->Nack(queue, group, raw,
                                     redeliver_delay_micros);
}

Result<size_t> ShardRouter::Depth(const std::string& queue,
                                  const std::string& group) const {
  return shards_[ShardOf(queue)].queues->Depth(queue, group);
}

Result<size_t> ShardRouter::PurgeExpired(const std::string& queue) {
  return shards_[ShardOf(queue)].queues->PurgeExpired(queue);
}

Result<Message> ShardRouter::Peek(const std::string& queue,
                                  MessageId id) const {
  const size_t shard = ShardOf(queue);
  EDADB_ASSIGN_OR_RETURN(MessageId raw, UntagId(shard, id));
  EDADB_ASSIGN_OR_RETURN(Message message,
                         shards_[shard].queues->Peek(queue, raw));
  message.id = TagId(shard, message.id);
  return message;
}

Status ShardRouter::Browse(
    const std::string& queue, const std::string& group,
    const std::function<bool(const Message&)>& fn) const {
  const size_t shard = ShardOf(queue);
  return shards_[shard].queues->Browse(
      queue, group, [this, shard, &fn](const Message& message) {
        Message tagged = message;
        tagged.id = TagId(shard, tagged.id);
        return fn(tagged);
      });
}

void ShardRouter::Shutdown() {
  for (const Shard& shard : shards_) shard.queues->Shutdown();
}

// ---------------------------------------------------------------------------
// ShardedDispatcher

ShardedDispatcher::ShardedDispatcher(ShardRouter* router) : router_(router) {
  dispatchers_.reserve(router->num_shards());
  for (size_t i = 0; i < router->num_shards(); ++i) {
    dispatchers_.push_back(
        std::make_unique<QueueDispatcher>(router->shard_manager(i)));
  }
}

ShardedDispatcher::~ShardedDispatcher() { Stop(); }

Status ShardedDispatcher::Bind(QueueDispatcher::Binding binding) {
  return dispatchers_[router_->ShardOf(binding.queue)]->Bind(
      std::move(binding));
}

Status ShardedDispatcher::Unbind(const std::string& queue,
                                 const std::string& group) {
  return dispatchers_[router_->ShardOf(queue)]->Unbind(queue, group);
}

Result<size_t> ShardedDispatcher::PumpOnce() {
  size_t handled = 0;
  for (const auto& dispatcher : dispatchers_) {
    EDADB_ASSIGN_OR_RETURN(size_t n, dispatcher->PumpOnce());
    handled += n;
  }
  return handled;
}

Status ShardedDispatcher::Start(TimestampMicros idle_wait_micros,
                                size_t workers_per_shard) {
  for (size_t i = 0; i < dispatchers_.size(); ++i) {
    const Status started =
        dispatchers_[i]->Start(idle_wait_micros, workers_per_shard);
    if (!started.ok()) {
      for (size_t j = 0; j < i; ++j) dispatchers_[j]->Stop();
      return started;
    }
  }
  return Status::OK();
}

void ShardedDispatcher::Stop() {
  for (const auto& dispatcher : dispatchers_) dispatcher->Stop();
}

Result<QueueDispatcher::BindingStats> ShardedDispatcher::GetStats(
    const std::string& queue, const std::string& group) const {
  return dispatchers_[router_->ShardOf(queue)]->GetStats(queue, group);
}

QueueDispatcher* ShardedDispatcher::shard(size_t shard) const {
  return dispatchers_[shard].get();
}

}  // namespace edadb
