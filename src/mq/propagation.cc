#include "mq/propagation.h"

#include "common/failpoint.h"

namespace edadb {

SimulatedExternalService::SimulatedExternalService(std::string name,
                                                   Options options,
                                                   Clock* clock,
                                                   uint64_t seed)
    : name_(std::move(name)),
      options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      rng_(seed) {}

Status SimulatedExternalService::Deliver(const Message& message) {
  MutexLock lock(&mu_);
  if (options_.latency_micros > 0) {
    clock_->AdvanceMicros(options_.latency_micros);
  }
  if (options_.failure_probability > 0.0 &&
      rng_.NextDouble() < options_.failure_probability) {
    ++failed_count_;
    return Status::TimedOut("simulated delivery failure to " + name_);
  }
  ++delivered_count_;
  recent_.push_back(message);
  if (recent_.size() > options_.keep_last) {
    recent_.erase(recent_.begin(),
                  recent_.begin() + (recent_.size() - options_.keep_last));
  }
  return Status::OK();
}

uint64_t SimulatedExternalService::delivered_count() const {
  MutexLock lock(&mu_);
  return delivered_count_;
}

uint64_t SimulatedExternalService::failed_count() const {
  MutexLock lock(&mu_);
  return failed_count_;
}

std::vector<Message> SimulatedExternalService::delivered() const {
  MutexLock lock(&mu_);
  return recent_;
}

Status Propagator::AddRule(PropagationRule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("propagation rule needs a name");
  }
  if (rule.destination_queue.empty() == (rule.external == nullptr)) {
    return Status::InvalidArgument(
        "rule '" + rule.name +
        "' needs exactly one destination (queue or external service)");
  }
  if (!queues_->HasQueue(rule.source_queue)) {
    return Status::NotFound("source queue '" + rule.source_queue + "'");
  }
  if (!rule.destination_queue.empty() &&
      !queues_->HasQueue(rule.destination_queue)) {
    return Status::NotFound("destination queue '" + rule.destination_queue +
                            "'");
  }
  if (!rule.source_group.empty()) {
    const Status s =
        queues_->AddConsumerGroup(rule.source_queue, rule.source_group);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  MutexLock lock(&mu_);
  const std::string name = rule.name;
  auto [it, inserted] = rules_.emplace(name, std::move(rule));
  if (!inserted) {
    return Status::AlreadyExists("rule '" + name + "' already exists");
  }
  stats_[name];
  return Status::OK();
}

Status Propagator::RemoveRule(const std::string& name) {
  MutexLock lock(&mu_);
  if (rules_.erase(name) == 0) {
    return Status::NotFound("rule '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Propagator::ListRules() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& [name, rule] : rules_) names.push_back(name);
  return names;
}

Result<Propagator::RuleStats> Propagator::GetStats(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) return Status::NotFound("rule '" + name + "'");
  return it->second;
}

Result<size_t> Propagator::RunOnce() {
  // Copy the rule set so rule admin does not block pumping.
  std::vector<PropagationRule> rules;
  {
    MutexLock lock(&mu_);
    rules.reserve(rules_.size());
    for (const auto& [name, rule] : rules_) rules.push_back(rule);
  }
  size_t forwarded_total = 0;
  for (const PropagationRule& rule : rules) {
    RuleStats delta;
    DequeueRequest request;
    request.group = rule.source_group;
    for (;;) {
      EDADB_ASSIGN_OR_RETURN(std::optional<Message> message,
                             queues_->Dequeue(rule.source_queue, request));
      if (!message.has_value()) break;
      // Filter: non-matching messages are consumed and dropped.
      if (rule.filter.has_value()) {
        MessageView view(*message);
        if (!rule.filter->MatchesOrFalse(view)) {
          EDADB_RETURN_IF_ERROR(queues_->Ack(rule.source_queue,
                                             rule.source_group,
                                             message->id));
          ++delta.dropped;
          continue;
        }
      }
      EnqueueRequest out;
      if (rule.transform != nullptr) {
        out = rule.transform(*message);
      } else {
        out.payload = message->payload;
        out.attributes = message->attributes;
        out.priority = message->priority;
        out.correlation_id = message->correlation_id;
      }
      Status delivery;
      bool injected = false;
      if (rule.external != nullptr) {
#if EDADB_FAILPOINTS_ENABLED
        // Injected external-service error/timeout: the endpoint never
        // sees the message, and it must be nacked and redelivered.
        if (failpoint::internal::AnyArmed()) {
          const failpoint::FireResult fp =
              failpoint::Fire("mq.propagate.deliver");
          if (fp.fired) {
            if (fp.kind == failpoint::ActionKind::kCrash) {
              failpoint::Crash("mq.propagate.deliver");
            }
            injected = true;
            delivery = fp.status.ok()
                           ? Status::TimedOut("injected external timeout")
                           : fp.status;
          }
        }
#endif
        if (!injected) delivery = rule.external->Deliver(*message);
      } else if (queues_->ShardOf(rule.source_queue) !=
                 queues_->ShardOf(rule.destination_queue)) {
        // Cross-shard handoff: enqueue through the destination shard's
        // own commit pipeline, idempotently. The key is stable across
        // redeliveries of the same source message (ids survive
        // recovery), so the crash window between the destination
        // commit and the source ack below replays into a nullopt
        // (already delivered) instead of a duplicate.
        const std::string dedup_key =
            rule.name + "\x01" + std::to_string(message->id);
        auto handed =
            queues_->EnqueueDedup(rule.destination_queue, out, dedup_key);
        delivery = handed.status();
        if (delivery.ok()) {
          // Destination committed (or had already committed) but the
          // source still holds the message: the at-least-once window
          // the torture schedules crash inside.
          FAILPOINT("mq.propagate.handoff");
        }
      } else {
        delivery = queues_->Enqueue(rule.destination_queue, out).status();
      }
      if (delivery.ok()) {
        EDADB_RETURN_IF_ERROR(
            queues_->Ack(rule.source_queue, rule.source_group, message->id));
        ++delta.forwarded;
        ++forwarded_total;
      } else {
        EDADB_RETURN_IF_ERROR(queues_->Nack(rule.source_queue,
                                            rule.source_group, message->id));
        ++delta.failed;
        // Stop pumping this rule for now; the message is redeliverable.
        break;
      }
    }
    MutexLock lock(&mu_);
    RuleStats& stats = stats_[rule.name];
    stats.forwarded += delta.forwarded;
    stats.dropped += delta.dropped;
    stats.failed += delta.failed;
  }
  return forwarded_total;
}

}  // namespace edadb
