#ifndef EDADB_MQ_MESSAGE_H_
#define EDADB_MQ_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.h"
#include "storage/log_record.h"
#include "value/record.h"
#include "value/row_codec.h"

namespace edadb {

using MessageId = RowId;

/// A staged message (§2.2.b). `attributes` are typed headers visible to
/// dequeue selectors and routing rules; `payload` is an opaque body.
struct Message {
  MessageId id = 0;
  std::string queue;
  TimestampMicros enqueue_time = 0;
  TimestampMicros visible_at = 0;   // Delayed delivery.
  TimestampMicros expires_at = 0;   // 0 = never expires.
  int64_t priority = 0;             // Higher dequeues first.
  int64_t delivery_count = 0;       // Deliveries to this consumer group.
  std::string correlation_id;
  AttributeList attributes;
  std::string payload;

  std::string ToString() const;
};

/// Exposes a message to selector predicates: built-in attributes by
/// reserved names plus every user attribute by its own name.
///   priority, delivery_count (INT64); enqueue_time (TIMESTAMP);
///   correlation_id, queue (STRING).
class MessageView : public RowAccessor {
 public:
  explicit MessageView(const Message& message) : message_(message) {}

  std::optional<Value> GetAttribute(std::string_view name) const override {
    if (name == "priority") return Value::Int64(message_.priority);
    if (name == "delivery_count") {
      return Value::Int64(message_.delivery_count);
    }
    if (name == "enqueue_time") {
      return Value::Timestamp(message_.enqueue_time);
    }
    if (name == "correlation_id") {
      return Value::String(message_.correlation_id);
    }
    if (name == "queue") return Value::String(message_.queue);
    for (const auto& [attr_name, value] : message_.attributes) {
      if (attr_name == name) return value;
    }
    return std::nullopt;
  }

 private:
  const Message& message_;
};

}  // namespace edadb

#endif  // EDADB_MQ_MESSAGE_H_
