#include "mq/queue_manager.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace edadb {

namespace {

/// Hot-path instruments, resolved once (pointers are stable forever).
metrics::Counter* EnqueuedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.enqueued");
  return c;
}
metrics::Histogram* EnqueueLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("mq.enqueue.latency_us");
  return h;
}
metrics::Counter* DequeuedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.dequeued");
  return c;
}
metrics::Histogram* DequeueLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("mq.dequeue.latency_us");
  return h;
}
metrics::Counter* AckCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.acks");
  return c;
}
metrics::Histogram* AckLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("mq.ack.latency_us");
  return h;
}
metrics::Counter* NackCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.nacks");
  return c;
}
metrics::Counter* DeadLetterCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.dead_lettered");
  return c;
}

constexpr char kQueuesTable[] = "__queues";
constexpr char kGroupsTable[] = "__queue_groups";
constexpr char kHandoffTable[] = "__handoff";

SchemaPtr QueuesMetaSchema() {
  return Schema::Make({
      {"name", ValueType::kString, /*nullable=*/false},
      {"max_deliveries", ValueType::kInt64, false},
      {"visibility_timeout", ValueType::kInt64, false},
      {"dead_letter", ValueType::kString, true},
  });
}

SchemaPtr GroupsMetaSchema() {
  return Schema::Make({
      {"queue", ValueType::kString, false},
      {"grp", ValueType::kString, false},
  });
}

/// Consumed dedup keys for EnqueueDedup (the cross-shard handoff
/// ledger). The unique index on `key` is what makes a replayed handoff
/// abort instead of enqueueing a second copy.
SchemaPtr HandoffSchema() {
  return Schema::Make({
      {"key", ValueType::kString, /*nullable=*/false},
      {"consumed_at", ValueType::kTimestamp, false},
  });
}

SchemaPtr MsgSchema() {
  return Schema::Make({
      {"enqueue_time", ValueType::kTimestamp, false},
      {"visible_at", ValueType::kTimestamp, false},
      {"expires_at", ValueType::kTimestamp, false},
      {"priority", ValueType::kInt64, false},
      {"correlation", ValueType::kString, true},
      {"attrs", ValueType::kString, true},
      {"payload", ValueType::kString, true},
  });
}

SchemaPtr DelivSchema() {
  return Schema::Make({
      {"grp", ValueType::kString, false},
      {"msg_id", ValueType::kInt64, false},
      {"visible_at", ValueType::kTimestamp, false},
      {"locked_until", ValueType::kTimestamp, false},
      {"delivery_count", ValueType::kInt64, false},
  });
}

int64_t GetInt64(const Record& record, std::string_view field) {
  auto v = record.Get(field);
  if (!v.ok() || v->is_null()) return 0;
  auto i = v->AsInt64();
  return i.ok() ? *i : 0;
}

std::string GetString(const Record& record, std::string_view field) {
  auto v = record.Get(field);
  if (!v.ok() || v->is_null() || v->type() != ValueType::kString) return "";
  return v->string_value();
}

}  // namespace

std::string QueueManager::MsgTableName(const std::string& queue) {
  return "__q_" + queue + "_msgs";
}

std::string QueueManager::DelivTableName(const std::string& queue) {
  return "__q_" + queue + "_dlv";
}

QueueManager::QueueManager(Database* db, size_t shard)
    : db_(db), clock_(db->clock()), shard_(shard) {}

Result<std::unique_ptr<QueueManager>> QueueManager::Attach(Database* db,
                                                           size_t shard) {
  auto manager = std::unique_ptr<QueueManager>(new QueueManager(db, shard));
  EDADB_RETURN_IF_ERROR(manager->EnsureMetaTables());
  EDADB_RETURN_IF_ERROR(manager->ReloadFromMeta());
  // Per-shard hot-path instruments; registry-owned, resolved once.
  const std::string prefix = "shard." + std::to_string(shard) + ".";
  metrics::Registry* registry = metrics::Registry::Default();
  manager->shard_enqueues_ = registry->GetCounter(prefix + "enqueues");
  manager->shard_dequeues_ = registry->GetCounter(prefix + "dequeues");
  manager->shard_handoffs_ = registry->GetCounter(prefix + "handoffs");
  manager->shard_commit_latency_ =
      registry->GetHistogram(prefix + "commit_latency_us");
  // Depth/inflight are computed at snapshot time rather than maintained
  // on every mutation: the collector takes mu_ (recursive), which is
  // safe because Registry::Snapshot invokes it without registry locks.
  QueueManager* raw = manager.get();
  manager->metrics_collector_ = metrics::Registry::Default()->RegisterCollector(
      [raw, prefix](std::vector<metrics::MetricSnapshot>* out) {
        RecursiveMutexLock lock(&raw->mu_);
        int64_t shard_depth = 0;
        int64_t shard_inflight = 0;
        for (const auto& [name, state] : raw->queues_) {
          int64_t depth = 0;
          int64_t inflight = 0;
          for (const auto& [group, rt] : state.runtime) {
            depth += static_cast<int64_t>(rt.ready.size());
            inflight += static_cast<int64_t>(rt.locked.size());
          }
          shard_depth += depth;
          shard_inflight += inflight;
          metrics::MetricSnapshot d;
          d.name = "mq.queue." + name + ".depth";
          d.kind = metrics::MetricKind::kGauge;
          d.value = depth;
          out->push_back(std::move(d));
          metrics::MetricSnapshot i;
          i.name = "mq.queue." + name + ".inflight";
          i.kind = metrics::MetricKind::kGauge;
          i.value = inflight;
          out->push_back(std::move(i));
        }
        // Shard-level rollups: the per-lock-domain load picture the
        // sharded deployment is balanced by.
        metrics::MetricSnapshot sd;
        sd.name = prefix + "depth";
        sd.kind = metrics::MetricKind::kGauge;
        sd.value = shard_depth;
        out->push_back(std::move(sd));
        metrics::MetricSnapshot si;
        si.name = prefix + "inflight";
        si.kind = metrics::MetricKind::kGauge;
        si.value = shard_inflight;
        out->push_back(std::move(si));
      });
  return manager;
}

Status QueueManager::EnsureMetaTables() {
  if (!db_->GetTable(kQueuesTable).ok()) {
    EDADB_RETURN_IF_ERROR(
        db_->CreateTable(kQueuesTable, QueuesMetaSchema()).status());
    EDADB_RETURN_IF_ERROR(db_->CreateIndex(kQueuesTable, "name", true));
  }
  if (!db_->GetTable(kGroupsTable).ok()) {
    EDADB_RETURN_IF_ERROR(
        db_->CreateTable(kGroupsTable, GroupsMetaSchema()).status());
  }
  if (!db_->GetTable(kHandoffTable).ok()) {
    EDADB_RETURN_IF_ERROR(
        db_->CreateTable(kHandoffTable, HandoffSchema()).status());
    EDADB_RETURN_IF_ERROR(db_->CreateIndex(kHandoffTable, "key", true));
  }
  return Status::OK();
}

Status QueueManager::ReloadFromMeta() {
  // Scan into locals; guarded members are only touched under the lock
  // below (the analysis cannot see an enclosing lock inside a lambda).
  EDADB_ASSIGN_OR_RETURN(Table * queues_table, db_->GetTable(kQueuesTable));
  std::map<std::string, QueueState> loaded;
  queues_table->ScanRows([&](RowId, const Record& row) {
    const std::string name = GetString(row, "name");
    QueueState state;
    state.options.max_deliveries = GetInt64(row, "max_deliveries");
    state.options.visibility_timeout_micros =
        GetInt64(row, "visibility_timeout");
    state.options.dead_letter_queue = GetString(row, "dead_letter");
    loaded.emplace(name, std::move(state));
    return true;
  });
  EDADB_ASSIGN_OR_RETURN(Table * groups_table, db_->GetTable(kGroupsTable));
  groups_table->ScanRows([&](RowId, const Record& row) {
    auto it = loaded.find(GetString(row, "queue"));
    if (it != loaded.end()) {
      it->second.explicit_groups.insert(GetString(row, "grp"));
    }
    return true;
  });
  RecursiveMutexLock lock(&mu_);
  queues_ = std::move(loaded);
  for (auto& [name, state] : queues_) {
    EDADB_RETURN_IF_ERROR(RegisterQueueTriggers(name));
    EDADB_RETURN_IF_ERROR(RebuildRuntimeLocked(name, &state));
  }
  return Status::OK();
}

Status QueueManager::CreateQueueStorage(const std::string& name) {
  EDADB_RETURN_IF_ERROR(
      db_->CreateTable(MsgTableName(name), MsgSchema()).status());
  EDADB_RETURN_IF_ERROR(
      db_->CreateTable(DelivTableName(name), DelivSchema()).status());
  return RegisterQueueTriggers(name);
}

Status QueueManager::RegisterQueueTriggers(const std::string& name) {
  TriggerDef msg_trigger;
  msg_trigger.name = "__qt_" + name + "_msgs";
  msg_trigger.table = MsgTableName(name);
  msg_trigger.timing = TriggerTiming::kAfter;
  msg_trigger.ops = kDmlInsert;
  msg_trigger.action = [this, name](const TriggerEvent& event) {
    OnMessageInserted(name, event.row_id, *event.new_row);
    return Status::OK();
  };
  EDADB_RETURN_IF_ERROR(db_->CreateTrigger(std::move(msg_trigger)));

  TriggerDef dlv_trigger;
  dlv_trigger.name = "__qt_" + name + "_dlv";
  dlv_trigger.table = DelivTableName(name);
  dlv_trigger.timing = TriggerTiming::kAfter;
  dlv_trigger.ops = kDmlInsert;
  dlv_trigger.action = [this, name](const TriggerEvent& event) {
    OnDeliveryInserted(name, event.row_id, *event.new_row);
    return Status::OK();
  };
  return db_->CreateTrigger(std::move(dlv_trigger));
}

Status QueueManager::RebuildRuntimeLocked(const std::string& name,
                                          QueueState* state) {
  EDADB_ASSIGN_OR_RETURN(Table * msgs, db_->GetTable(MsgTableName(name)));
  msgs->ScanRows([&](RowId row_id, const Record& row) {
    state->messages[row_id] = {
        GetInt64(row, "priority"),
        WallMicros::FromMicros(GetInt64(row, "expires_at"))};
    return true;
  });
  EDADB_ASSIGN_OR_RETURN(Table * dlv, db_->GetTable(DelivTableName(name)));
  // Persisted deadlines are wall timestamps (steady epochs do not
  // survive a process); convert the remaining span into the steady
  // domain the runtime maps live in. The wall-wall subtraction yields a
  // domain-free duration, which is the only thing allowed to cross.
  const WallMicros wall_now = clock_->WallNow();
  const SteadyMicros steady_now = clock_->SteadyNow();
  std::set<MessageId> delivered_ids;
  dlv->ScanRows([&](RowId row_id, const Record& row) {
    const std::string group = GetString(row, "grp");
    const MessageId msg_id = static_cast<MessageId>(GetInt64(row, "msg_id"));
    delivered_ids.insert(msg_id);
    GroupRuntime& rt = state->runtime[group];
    rt.deliveries[msg_id] = {row_id, GetInt64(row, "delivery_count")};
    const WallMicros locked_until =
        WallMicros::FromMicros(GetInt64(row, "locked_until"));
    const WallMicros visible_at =
        WallMicros::FromMicros(GetInt64(row, "visible_at"));
    auto meta = state->messages.find(msg_id);
    const int64_t priority =
        meta != state->messages.end() ? meta->second.priority : 0;
    if (locked_until > wall_now) {
      rt.locked[msg_id] = steady_now + (locked_until - wall_now);
    } else if (visible_at > wall_now) {
      rt.delayed.emplace(steady_now + (visible_at - wall_now), msg_id);
    } else {
      rt.ready.emplace(-priority, msg_id);
    }
    return true;
  });
  // GC orphaned message rows: FinishDelivery deletes the last delivery
  // row and the message row in two separate auto-commit transactions,
  // so a crash between them leaves a fully-acked message body behind.
  // Enqueue inserts message + deliveries atomically, so a message with
  // no delivery row can only be that crash leftover — delete it.
  std::vector<MessageId> orphans;
  for (const auto& [id, meta] : state->messages) {
    if (delivered_ids.count(id) == 0) orphans.push_back(id);
  }
  for (const MessageId id : orphans) {
    EDADB_LOG(Warn) << "queue '" << name << "': GC of orphaned message "
                    << id << " (crash between ack deletes)";
    state->messages.erase(id);
    EDADB_RETURN_IF_ERROR(db_->DeleteRow(MsgTableName(name), id));
  }
  return Status::OK();
}

Status QueueManager::CreateQueue(const std::string& name,
                                 QueueCreateOptions options) {
  RecursiveMutexLock lock(&mu_);
  if (name.empty()) return Status::InvalidArgument("queue needs a name");
  if (queues_.count(name) > 0) {
    return Status::AlreadyExists("queue '" + name + "' already exists");
  }
  EDADB_ASSIGN_OR_RETURN(Table * meta, db_->GetTable(kQueuesTable));
  Record row = *RecordBuilder(meta->schema())
                    .SetString("name", name)
                    .SetInt64("max_deliveries", options.max_deliveries)
                    .SetInt64("visibility_timeout",
                              options.visibility_timeout_micros)
                    .SetString("dead_letter", options.dead_letter_queue)
                    .Build();
  EDADB_RETURN_IF_ERROR(db_->Insert(kQueuesTable, std::move(row)).status());
  EDADB_RETURN_IF_ERROR(CreateQueueStorage(name));
  QueueState state;
  state.options = std::move(options);
  queues_.emplace(name, std::move(state));
  return Status::OK();
}

Status QueueManager::DropQueue(const std::string& name) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    return Status::NotFound("queue '" + name + "'");
  }
  // A missing trigger is fine (partially-created queue); any other
  // failure would leave a live trigger firing on a dropped table, so it
  // must abort the drop.
  for (const char* suffix : {"_msgs", "_dlv"}) {
    const Status dropped = db_->DropTrigger("__qt_" + name + suffix);
    if (!dropped.ok() && !dropped.IsNotFound()) return dropped;
  }
  EDADB_RETURN_IF_ERROR(db_->DropTable(MsgTableName(name)));
  EDADB_RETURN_IF_ERROR(db_->DropTable(DelivTableName(name)));
  EDADB_ASSIGN_OR_RETURN(Predicate by_name,
                         Predicate::Compile("name = '" + name + "'"));
  EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kQueuesTable, by_name).status());
  EDADB_ASSIGN_OR_RETURN(Predicate by_queue,
                         Predicate::Compile("queue = '" + name + "'"));
  EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kGroupsTable, by_queue).status());
  queues_.erase(it);
  return Status::OK();
}

bool QueueManager::HasQueue(const std::string& name) const {
  RecursiveMutexLock lock(&mu_);
  return queues_.count(name) > 0;
}

std::vector<std::string> QueueManager::ListQueues() const {
  RecursiveMutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, state] : queues_) names.push_back(name);
  return names;
}

Status QueueManager::AddConsumerGroup(const std::string& queue,
                                      const std::string& group) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  if (group.empty()) {
    return Status::InvalidArgument("consumer group needs a name");
  }
  if (it->second.explicit_groups.count(group) > 0) {
    return Status::AlreadyExists("group '" + group + "' already registered");
  }
  EDADB_ASSIGN_OR_RETURN(Table * meta, db_->GetTable(kGroupsTable));
  Record row = *RecordBuilder(meta->schema())
                    .SetString("queue", queue)
                    .SetString("grp", group)
                    .Build();
  EDADB_RETURN_IF_ERROR(db_->Insert(kGroupsTable, std::move(row)).status());
  it->second.explicit_groups.insert(group);
  return Status::OK();
}

Status QueueManager::RemoveConsumerGroup(const std::string& queue,
                                         const std::string& group) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  if (it->second.explicit_groups.erase(group) == 0) {
    return Status::NotFound("group '" + group + "'");
  }
  EDADB_ASSIGN_OR_RETURN(
      Predicate match,
      Predicate::Compile("queue = '" + queue + "' AND grp = '" + group +
                         "'"));
  EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kGroupsTable, match).status());
  // Finish any outstanding deliveries so messages can be garbage
  // collected.
  auto rt_it = it->second.runtime.find(group);
  if (rt_it != it->second.runtime.end()) {
    std::vector<MessageId> ids;
    for (const auto& [id, deliv] : rt_it->second.deliveries) {
      ids.push_back(id);
    }
    for (const MessageId id : ids) {
      EDADB_RETURN_IF_ERROR(FinishDelivery(queue, &it->second, group, id));
    }
    it->second.runtime.erase(group);
  }
  return Status::OK();
}

Result<std::vector<std::string>> QueueManager::ListConsumerGroups(
    const std::string& queue) const {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  return std::vector<std::string>(it->second.explicit_groups.begin(),
                                  it->second.explicit_groups.end());
}

std::vector<std::string> QueueManager::EffectiveGroups(
    const QueueState& state) {
  if (state.explicit_groups.empty()) return {""};
  return {state.explicit_groups.begin(), state.explicit_groups.end()};
}

Result<Record> QueueManager::BuildMessageRecord(
    const std::string& queue, const EnqueueRequest& request,
    WallMicros now) const {
  EDADB_ASSIGN_OR_RETURN(Table * msgs, db_->GetTable(MsgTableName(queue)));
  std::string attrs;
  EncodeAttributes(request.attributes, &attrs);
  return RecordBuilder(msgs->schema())
      .SetTimestamp("enqueue_time", now.micros())
      .SetTimestamp("visible_at", (now + request.delay_micros).micros())
      .SetTimestamp("expires_at",
                    request.ttl_micros > 0 ? (now + request.ttl_micros).micros()
                                           : 0)
      .SetInt64("priority", request.priority)
      .SetString("correlation", request.correlation_id)
      .SetString("attrs", std::move(attrs))
      .SetString("payload", request.payload)
      .Build();
}

Result<MessageId> QueueManager::Enqueue(const std::string& queue,
                                        const EnqueueRequest& request) {
  EDADB_ASSIGN_OR_RETURN(std::vector<MessageId> ids,
                         EnqueueSpan(queue, &request, 1));
  return ids.front();
}

Result<std::vector<MessageId>> QueueManager::EnqueueBatch(
    const std::string& queue, const std::vector<EnqueueRequest>& requests) {
  return EnqueueSpan(queue, requests.data(), requests.size());
}

Result<std::vector<MessageId>> QueueManager::EnqueueSpan(
    const std::string& queue, const EnqueueRequest* requests, size_t count) {
  metrics::LatencyScope latency(EnqueueLatency());
  std::vector<MessageId> ids;
  if (count == 0) {
    // Validate the queue even for an empty batch so callers get the
    // same NotFound they would for a non-empty one.
    RecursiveMutexLock lock(&mu_);
    if (queues_.find(queue) == queues_.end()) {
      return Status::NotFound("queue '" + queue + "'");
    }
    return ids;
  }
  ids.reserve(count);
  auto txn = db_->BeginTransaction();
  for (size_t i = 0; i < count; ++i) {
    // Crash between staged messages of a batch: the transaction never
    // commits, so the whole batch must vanish (all-or-nothing).
    if (i > 0) FAILPOINT("mq.enqueue_batch.mid");
    EDADB_ASSIGN_OR_RETURN(
        MessageId id, EnqueueInTransaction(txn.get(), queue, requests[i]));
    ids.push_back(id);
  }
  // Ops staged but not committed: a crash here must lose the batch
  // entirely (no body rows, no delivery rows).
  FAILPOINT("mq.enqueue.before_commit");
  {
    metrics::LatencyScope commit_latency(shard_commit_latency_);
    EDADB_RETURN_IF_ERROR(txn->Commit());
  }
  EnqueuedCounter()->Add(count);
  if (shard_enqueues_ != nullptr) shard_enqueues_->Add(count);
  return ids;
}

Result<std::optional<MessageId>> QueueManager::EnqueueDedup(
    const std::string& queue, const EnqueueRequest& request,
    const std::string& dedup_key) {
  if (dedup_key.empty()) {
    return Status::InvalidArgument("EnqueueDedup needs a dedup key");
  }
  EDADB_ASSIGN_OR_RETURN(Table * ledger, db_->GetTable(kHandoffTable));
  Record key_row = *RecordBuilder(ledger->schema())
                        .SetString("key", dedup_key)
                        .SetTimestamp("consumed_at",
                                      clock_->WallNow().micros())
                        .Build();
  auto txn = db_->BeginTransaction();
  const Status claimed =
      txn->Insert(kHandoffTable, std::move(key_row)).status();
  if (claimed.IsAlreadyExists()) return std::optional<MessageId>();
  EDADB_RETURN_IF_ERROR(claimed);
  EDADB_ASSIGN_OR_RETURN(MessageId id,
                         EnqueueInTransaction(txn.get(), queue, request));
  // Key row + message + delivery rows commit atomically: the key is
  // consumed iff the message became visible. Commit-time validation
  // happens before any WAL append, so a lost race on the key aborts
  // cleanly with AlreadyExists.
  FAILPOINT("mq.handoff.before_commit");
  Status committed;
  {
    metrics::LatencyScope commit_latency(shard_commit_latency_);
    committed = txn->Commit();
  }
  if (committed.IsAlreadyExists()) return std::optional<MessageId>();
  EDADB_RETURN_IF_ERROR(committed);
  EnqueuedCounter()->Add(1);
  if (shard_enqueues_ != nullptr) shard_enqueues_->Add(1);
  if (shard_handoffs_ != nullptr) shard_handoffs_->Add(1);
  return std::optional<MessageId>(id);
}

Result<MessageId> QueueManager::EnqueueInTransaction(
    Transaction* txn, const std::string& queue,
    const EnqueueRequest& request) {
  std::vector<std::string> groups;
  {
    RecursiveMutexLock lock(&mu_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
    groups = EffectiveGroups(it->second);
  }
  const WallMicros now = clock_->WallNow();
  EDADB_ASSIGN_OR_RETURN(Record msg_row,
                         BuildMessageRecord(queue, request, now));
  EDADB_ASSIGN_OR_RETURN(MessageId id,
                         txn->Insert(MsgTableName(queue), std::move(msg_row)));
  EDADB_ASSIGN_OR_RETURN(Table * dlv, db_->GetTable(DelivTableName(queue)));
  for (const std::string& group : groups) {
    Record dlv_row = *RecordBuilder(dlv->schema())
                          .SetString("grp", group)
                          .SetInt64("msg_id", static_cast<int64_t>(id))
                          .SetTimestamp("visible_at",
                                        (now + request.delay_micros).micros())
                          .SetTimestamp("locked_until", 0)
                          .SetInt64("delivery_count", 0)
                          .Build();
    EDADB_RETURN_IF_ERROR(
        txn->Insert(DelivTableName(queue), std::move(dlv_row)).status());
  }
  return id;
}

void QueueManager::OnMessageInserted(const std::string& queue, MessageId id,
                                     const Record& row) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return;
  it->second.messages[id] = {
      GetInt64(row, "priority"),
      WallMicros::FromMicros(GetInt64(row, "expires_at"))};
}

void QueueManager::OnDeliveryInserted(const std::string& queue,
                                      RowId deliv_row, const Record& row) {
  {
    RecursiveMutexLock lock(&mu_);
    auto it = queues_.find(queue);
    if (it == queues_.end()) return;
    QueueState& state = it->second;
    const std::string group = GetString(row, "grp");
    const MessageId msg_id = static_cast<MessageId>(GetInt64(row, "msg_id"));
    GroupRuntime& rt = state.runtime[group];
    rt.deliveries[msg_id] = {deliv_row, GetInt64(row, "delivery_count")};
    // Row carries a wall visible_at; the runtime delay is the remaining
    // span mapped onto the steady domain.
    const WallMicros visible_at =
        WallMicros::FromMicros(GetInt64(row, "visible_at"));
    const WallMicros wall_now = clock_->WallNow();
    auto meta = state.messages.find(msg_id);
    const int64_t priority =
        meta != state.messages.end() ? meta->second.priority : 0;
    if (visible_at > wall_now) {
      rt.delayed.emplace(clock_->SteadyNow() + (visible_at - wall_now),
                         msg_id);
    } else {
      rt.ready.emplace(-priority, msg_id);
    }
    BumpActivityLocked();
  }
  enqueue_cv_.SignalAll();
}

Result<Message> QueueManager::LoadMessage(const std::string& queue,
                                          MessageId id) const {
  EDADB_ASSIGN_OR_RETURN(Record row, db_->GetRow(MsgTableName(queue), id));
  Message message;
  message.id = id;
  message.queue = queue;
  message.enqueue_time = GetInt64(row, "enqueue_time");
  message.visible_at = GetInt64(row, "visible_at");
  message.expires_at = GetInt64(row, "expires_at");
  message.priority = GetInt64(row, "priority");
  message.correlation_id = GetString(row, "correlation");
  message.payload = GetString(row, "payload");
  const std::string attrs = GetString(row, "attrs");
  if (!attrs.empty()) {
    EDADB_ASSIGN_OR_RETURN(message.attributes, DecodeAttributes(attrs));
  }
  return message;
}

void QueueManager::Promote(QueueState* state, GroupRuntime* rt,
                           SteadyMicros steady_now) {
  while (!rt->delayed.empty() && rt->delayed.begin()->first <= steady_now) {
    const MessageId id = rt->delayed.begin()->second;
    rt->delayed.erase(rt->delayed.begin());
    auto meta = state->messages.find(id);
    const int64_t priority =
        meta != state->messages.end() ? meta->second.priority : 0;
    rt->ready.emplace(-priority, id);
  }
  for (auto it = rt->locked.begin(); it != rt->locked.end();) {
    if (it->second <= steady_now) {
      auto meta = state->messages.find(it->first);
      const int64_t priority =
          meta != state->messages.end() ? meta->second.priority : 0;
      rt->ready.emplace(-priority, it->first);
      it = rt->locked.erase(it);
    } else {
      ++it;
    }
  }
}

Status QueueManager::FinishDelivery(const std::string& queue,
                                    QueueState* state,
                                    const std::string& group, MessageId id) {
  auto rt_it = state->runtime.find(group);
  if (rt_it == state->runtime.end()) {
    return Status::NotFound("no runtime for group '" + group + "'");
  }
  GroupRuntime& rt = rt_it->second;
  auto deliv_it = rt.deliveries.find(id);
  if (deliv_it == rt.deliveries.end()) {
    return Status::NotFound("no delivery of message " + std::to_string(id) +
                            " for group '" + group + "'");
  }
  FAILPOINT("mq.finish.before_dlv_delete");
  const RowId deliv_row = deliv_it->second.deliv_row;
  rt.deliveries.erase(deliv_it);
  rt.locked.erase(id);
  auto meta = state->messages.find(id);
  const int64_t priority =
      meta != state->messages.end() ? meta->second.priority : 0;
  rt.ready.erase({-priority, id});
  for (auto it = rt.delayed.begin(); it != rt.delayed.end(); ++it) {
    if (it->second == id) {
      rt.delayed.erase(it);
      break;
    }
  }
  EDADB_RETURN_IF_ERROR(db_->DeleteRow(DelivTableName(queue), deliv_row));
  // The delivery row is gone but the message row still exists: a crash
  // here is the orphaned-message window RebuildRuntimeLocked GCs.
  FAILPOINT("mq.finish.after_dlv_delete");

  // GC the message when no group still holds a delivery.
  bool live = false;
  for (const auto& [name, other_rt] : state->runtime) {
    if (other_rt.deliveries.count(id) > 0) {
      live = true;
      break;
    }
  }
  if (!live) {
    state->messages.erase(id);
    // A failed delete must surface: the caller's ack is not complete
    // until the message row is gone (recovery would reattach it).
    EDADB_RETURN_IF_ERROR(db_->DeleteRow(MsgTableName(queue), id));
  }
  return Status::OK();
}

Status QueueManager::DeadLetter(const std::string& queue, QueueState* state,
                                const std::string& group, MessageId id,
                                const std::string& reason) {
  if (!state->options.dead_letter_queue.empty() &&
      queues_.count(state->options.dead_letter_queue) > 0) {
    auto message = LoadMessage(queue, id);
    if (message.ok()) {
      EnqueueRequest request;
      request.payload = message->payload;
      request.attributes = message->attributes;
      request.attributes.emplace_back("dlq_reason", Value::String(reason));
      request.attributes.emplace_back("dlq_source_queue",
                                      Value::String(queue));
      request.attributes.emplace_back(
          "dlq_source_id", Value::Int64(static_cast<int64_t>(id)));
      request.priority = message->priority;
      request.correlation_id = message->correlation_id;
      const auto dlq_result =
          Enqueue(state->options.dead_letter_queue, request);
      if (!dlq_result.ok()) {
        EDADB_LOG(Warn) << "dead-letter enqueue failed: "
                        << dlq_result.status();
      }
    }
  }
  DeadLetterCounter()->Add(1);
  return FinishDelivery(queue, state, group, id);
}

Result<std::optional<Message>> QueueManager::Dequeue(
    const std::string& queue, const DequeueRequest& request) {
  EDADB_ASSIGN_OR_RETURN(std::vector<Message> messages,
                         DequeueBatch(queue, request, 1));
  if (messages.empty()) return std::optional<Message>();
  return std::optional<Message>(std::move(messages.front()));
}

Result<std::vector<Message>> QueueManager::DequeueBatch(
    const std::string& queue, const DequeueRequest& request,
    size_t max_messages) {
  metrics::LatencyScope latency(DequeueLatency());
  std::vector<Message> out;
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  QueueState& state = it->second;
  const std::vector<std::string> groups = EffectiveGroups(state);
  if (std::find(groups.begin(), groups.end(), request.group) ==
      groups.end()) {
    return Status::NotFound("consumer group '" + request.group +
                            "' not registered on queue '" + queue + "'");
  }
  GroupRuntime& rt = state.runtime[request.group];
  // Wall time decides data questions (TTL expiry, persisted rows);
  // steady time decides deadlines (lock promotion and new locks).
  const WallMicros wall_now = clock_->WallNow();
  const SteadyMicros steady_now = clock_->SteadyNow();
  Promote(&state, &rt, steady_now);
  if (max_messages == 0) return out;

  // Snapshot the ready order; dead-lettering below mutates the set.
  std::vector<std::pair<int64_t, MessageId>> candidates(rt.ready.begin(),
                                                        rt.ready.end());
  for (const auto& [neg_priority, id] : candidates) {
    auto meta_it = state.messages.find(id);
    if (meta_it == state.messages.end()) {
      rt.ready.erase({neg_priority, id});
      continue;
    }
    const MsgMeta meta = meta_it->second;
    if (meta.expires_at.micros() != 0 && meta.expires_at <= wall_now) {
      EDADB_RETURN_IF_ERROR(
          DeadLetter(queue, &state, request.group, id, "expired"));
      continue;
    }
    auto deliv_it = rt.deliveries.find(id);
    if (deliv_it == rt.deliveries.end()) {
      rt.ready.erase({neg_priority, id});
      continue;
    }
    if (deliv_it->second.delivery_count >= state.options.max_deliveries) {
      EDADB_RETURN_IF_ERROR(
          DeadLetter(queue, &state, request.group, id, "max_deliveries"));
      continue;
    }
    EDADB_ASSIGN_OR_RETURN(Message message, LoadMessage(queue, id));
    if (request.selector.has_value()) {
      MessageView view(message);
      if (!request.selector->MatchesOrFalse(view)) continue;
    }
    // Lock it for this group. A crash before the lock persists means
    // the consumer never saw the message: it must be redelivered.
    FAILPOINT("mq.dequeue.before_lock_persist");
    DelivState& deliv = deliv_it->second;
    deliv.delivery_count += 1;
    // The row stores the wall-domain deadline (recovery converts it
    // back); the runtime lock is its steady-domain twin.
    const WallMicros locked_until_wall =
        wall_now + state.options.visibility_timeout_micros;
    EDADB_ASSIGN_OR_RETURN(Record dlv_row,
                           db_->GetRow(DelivTableName(queue),
                                       deliv.deliv_row));
    EDADB_RETURN_IF_ERROR(dlv_row.Set(
        "locked_until", Value::Timestamp(locked_until_wall.micros())));
    EDADB_RETURN_IF_ERROR(dlv_row.Set("delivery_count",
                                      Value::Int64(deliv.delivery_count)));
    EDADB_RETURN_IF_ERROR(db_->UpdateRow(DelivTableName(queue),
                                         deliv.deliv_row,
                                         std::move(dlv_row)));
    rt.ready.erase({neg_priority, id});
    rt.locked[id] = steady_now + state.options.visibility_timeout_micros;
    message.delivery_count = deliv.delivery_count;
    out.push_back(std::move(message));
    if (out.size() >= max_messages) break;
  }
  DequeuedCounter()->Add(out.size());
  if (shard_dequeues_ != nullptr) shard_dequeues_->Add(out.size());
  return out;
}

Result<std::optional<Message>> QueueManager::DequeueWait(
    const std::string& queue, const DequeueRequest& request,
    TimestampMicros timeout_micros) {
  {
    RecursiveMutexLock lock(&mu_);
    if (shutdown_) return Status::Aborted("QueueManager shut down");
  }
  if (timeout_micros <= 0) {
    // Contract: exactly one non-blocking attempt, never a wait.
    return Dequeue(queue, request);
  }
  // Deadline in the clock's steady domain: real time keeps it moving
  // (SimulatedClock's steady side includes host-elapsed time) and
  // AdvanceMicros shortens it deterministically; a wall step (SetMicros)
  // does not touch it.
  const SteadyMicros deadline = clock_->SteadyNow() + timeout_micros;
  for (;;) {
    EDADB_ASSIGN_OR_RETURN(std::optional<Message> message,
                           Dequeue(queue, request));
    if (message.has_value()) return message;
    const SteadyMicros now = clock_->SteadyNow();
    if (now >= deadline) return std::optional<Message>();
    // Capped slices keep simulated-clock promotions responsive (a
    // delayed message maturing via AdvanceMicros signals no CV).
    const TimestampMicros slice =
        std::min<TimestampMicros>(deadline - now, 5 * kMicrosPerMilli);
    RecursiveMutexLock lock(&mu_);
    if (shutdown_) return Status::Aborted("QueueManager shut down");
    enqueue_cv_.WaitForMicros(&mu_, slice);
  }
}

bool QueueManager::WaitForActivity(uint64_t last_seen_seq,
                                   TimestampMicros timeout_micros) {
  const SteadyMicros deadline = clock_->SteadyNow() + timeout_micros;
  RecursiveMutexLock lock(&mu_);
  for (;;) {
    if (shutdown_) return true;
    if (activity_seq_.load(std::memory_order_acquire) != last_seen_seq) {
      return true;
    }
    const SteadyMicros now = clock_->SteadyNow();
    if (timeout_micros <= 0 || now >= deadline) return false;
    // One wait for the full remainder — every producer signals, so no
    // polling slices are needed here (unlike DequeueWait, nothing
    // matures silently: new activity always bumps the seq).
    enqueue_cv_.WaitForMicros(&mu_, deadline - now);
  }
}

void QueueManager::WakeWaiters() {
  {
    RecursiveMutexLock lock(&mu_);
    BumpActivityLocked();
  }
  enqueue_cv_.SignalAll();
}

void QueueManager::Shutdown() {
  {
    RecursiveMutexLock lock(&mu_);
    shutdown_ = true;
    BumpActivityLocked();
  }
  enqueue_cv_.SignalAll();
}

Status QueueManager::Ack(const std::string& queue, const std::string& group,
                         MessageId id) {
  metrics::LatencyScope latency(AckLatency());
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  // Nothing persisted yet: a crash here loses the ack, and the message
  // must be redelivered after the visibility timeout (at-least-once).
  FAILPOINT("mq.ack.before_finish");
  EDADB_RETURN_IF_ERROR(FinishDelivery(queue, &it->second, group, id));
  AckCounter()->Add(1);
  return Status::OK();
}

Status QueueManager::Nack(const std::string& queue, const std::string& group,
                          MessageId id,
                          TimestampMicros redeliver_delay_micros) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  QueueState& state = it->second;
  auto rt_it = state.runtime.find(group);
  if (rt_it == state.runtime.end()) {
    return Status::NotFound("no runtime for group '" + group + "'");
  }
  GroupRuntime& rt = rt_it->second;
  auto deliv_it = rt.deliveries.find(id);
  if (deliv_it == rt.deliveries.end()) {
    return Status::NotFound("no delivery of message " + std::to_string(id));
  }
  if (deliv_it->second.delivery_count >= state.options.max_deliveries) {
    return DeadLetter(queue, &state, group, id, "max_deliveries");
  }
  FAILPOINT("mq.nack.before_persist");
  // Persist the redelivery time as wall; schedule it in steady.
  const WallMicros wall_now = clock_->WallNow();
  const WallMicros visible_at_wall = wall_now + redeliver_delay_micros;
  EDADB_ASSIGN_OR_RETURN(
      Record dlv_row,
      db_->GetRow(DelivTableName(queue), deliv_it->second.deliv_row));
  EDADB_RETURN_IF_ERROR(dlv_row.Set("locked_until", Value::Timestamp(0)));
  EDADB_RETURN_IF_ERROR(
      dlv_row.Set("visible_at", Value::Timestamp(visible_at_wall.micros())));
  EDADB_RETURN_IF_ERROR(db_->UpdateRow(
      DelivTableName(queue), deliv_it->second.deliv_row, std::move(dlv_row)));
  rt.locked.erase(id);
  auto meta = state.messages.find(id);
  const int64_t priority =
      meta != state.messages.end() ? meta->second.priority : 0;
  if (redeliver_delay_micros > 0) {
    rt.delayed.emplace(clock_->SteadyNow() + redeliver_delay_micros, id);
  } else {
    rt.ready.emplace(-priority, id);
  }
  NackCounter()->Add(1);
  BumpActivityLocked();
  enqueue_cv_.SignalAll();
  return Status::OK();
}

Result<size_t> QueueManager::Depth(const std::string& queue,
                                   const std::string& group) const {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  auto rt_it = it->second.runtime.find(group);
  if (rt_it == it->second.runtime.end()) return size_t{0};
  // Count ready plus delayed-now-due without mutating (Depth is const).
  const SteadyMicros steady_now = clock_->SteadyNow();
  size_t depth = rt_it->second.ready.size();
  for (const auto& [visible_at, id] : rt_it->second.delayed) {
    if (visible_at <= steady_now) ++depth;
  }
  for (const auto& [id, locked_until] : rt_it->second.locked) {
    if (locked_until <= steady_now) ++depth;
  }
  return depth;
}

Result<size_t> QueueManager::PurgeExpired(const std::string& queue) {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  QueueState& state = it->second;
  const WallMicros now = clock_->WallNow();
  std::vector<MessageId> expired;
  for (const auto& [id, meta] : state.messages) {
    if (meta.expires_at.micros() != 0 && meta.expires_at <= now) {
      expired.push_back(id);
    }
  }
  size_t purged = 0;
  for (const MessageId id : expired) {
    // Dead-letter once, then drop every group's delivery.
    bool first = true;
    std::vector<std::string> holding;
    for (const auto& [group, rt] : state.runtime) {
      if (rt.deliveries.count(id) > 0) holding.push_back(group);
    }
    for (const std::string& group : holding) {
      if (first) {
        EDADB_RETURN_IF_ERROR(
            DeadLetter(queue, &state, group, id, "expired"));
        first = false;
      } else {
        EDADB_RETURN_IF_ERROR(FinishDelivery(queue, &state, group, id));
      }
    }
    if (!holding.empty()) ++purged;
  }
  return purged;
}

Status QueueManager::Browse(
    const std::string& queue, const std::string& group,
    const std::function<bool(const Message&)>& fn) const {
  RecursiveMutexLock lock(&mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) return Status::NotFound("queue '" + queue + "'");
  auto rt_it = it->second.runtime.find(group);
  if (rt_it == it->second.runtime.end()) return Status::OK();
  const SteadyMicros steady_now = clock_->SteadyNow();
  // Snapshot: ready entries plus matured delayed/expired-lock entries,
  // in (priority, id) order — the order Dequeue would serve them.
  std::set<std::pair<int64_t, MessageId>> visible = rt_it->second.ready;
  for (const auto& [visible_at, id] : rt_it->second.delayed) {
    if (visible_at <= steady_now) {
      auto meta = it->second.messages.find(id);
      visible.emplace(
          meta != it->second.messages.end() ? -meta->second.priority : 0,
          id);
    }
  }
  for (const auto& [id, locked_until] : rt_it->second.locked) {
    if (locked_until <= steady_now) {
      auto meta = it->second.messages.find(id);
      visible.emplace(
          meta != it->second.messages.end() ? -meta->second.priority : 0,
          id);
    }
  }
  for (const auto& [neg_priority, id] : visible) {
    auto message = LoadMessage(queue, id);
    if (!message.ok()) continue;
    if (!fn(*message)) break;
  }
  return Status::OK();
}

Result<Message> QueueManager::Peek(const std::string& queue,
                                   MessageId id) const {
  RecursiveMutexLock lock(&mu_);
  if (queues_.count(queue) == 0) {
    return Status::NotFound("queue '" + queue + "'");
  }
  return LoadMessage(queue, id);
}

std::string Message::ToString() const {
  std::string out = StringPrintf(
      "Message{id=%llu queue=%s priority=%lld deliveries=%lld",
      static_cast<unsigned long long>(id), queue.c_str(),
      static_cast<long long>(priority),
      static_cast<long long>(delivery_count));
  for (const auto& [name, value] : attributes) {
    out += " " + name + "=" + value.ToString();
  }
  out += " payload='" + payload + "'}";
  return out;
}

}  // namespace edadb
