#ifndef EDADB_MQ_DISPATCHER_H_
#define EDADB_MQ_DISPATCHER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "mq/queue_manager.h"

namespace edadb {

/// §2.2.d.i: "messages may be consumed locally to the message store. To
/// do this the message store may have to activate applications as
/// needed." The dispatcher binds handler functions to queues; when
/// messages arrive the handler is activated with the message. A handler
/// returning OK acks; an error nacks, so the queue's redelivery and
/// dead-letter policy governs retries.
///
/// Two driving modes:
///   - PumpOnce(): cooperative, for schedulers/tests (deterministic);
///   - Start()/Stop(): a background activation thread that blocks on
///     queue arrivals.
/// Thread-safe.
class QueueDispatcher {
 public:
  using Handler = std::function<Status(const Message&)>;

  /// `queues` must outlive the dispatcher.
  explicit QueueDispatcher(QueueManager* queues) : queues_(queues) {}

  ~QueueDispatcher();

  QueueDispatcher(const QueueDispatcher&) = delete;
  QueueDispatcher& operator=(const QueueDispatcher&) = delete;

  struct Binding {
    std::string queue;
    std::string group;                  // "" = default group.
    std::optional<Predicate> selector;  // Optional dequeue selector.
    Handler handler;
  };

  /// Binds a handler; one binding per (queue, group).
  EDADB_NODISCARD Status Bind(Binding binding);
  EDADB_NODISCARD Status Unbind(const std::string& queue, const std::string& group);

  /// Drains every binding once; returns messages handled (acked).
  EDADB_NODISCARD Result<size_t> PumpOnce();

  /// Starts the background activation pool (`num_workers` threads, all
  /// pumping this dispatcher's bindings). When a pump finds nothing a
  /// worker blocks on ITS queue manager's activity signal (enqueue,
  /// nack, shutdown) — the wait/wake domain is shard-local, so activity
  /// on another shard's manager never wakes these workers;
  /// `idle_wait_micros` is only the fallback re-poll bound, not the
  /// wake latency. FailedPrecondition if already running.
  EDADB_NODISCARD Status Start(
      TimestampMicros idle_wait_micros = 50 * kMicrosPerMilli,
      size_t num_workers = 1);

  /// Stops and joins the background workers (idempotent).
  void Stop();

  /// Times a parked worker was woken by queue activity or shutdown
  /// (idle-timeout re-polls do not count). The shard-locality
  /// regression check: enqueues on other shards must leave this flat.
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

  struct BindingStats {  // lint:allow(adhoc-stats): per-binding counts, queried by key
    uint64_t handled = 0;  // Handler OK -> acked.
    uint64_t failed = 0;   // Handler error -> nacked.
  };
  EDADB_NODISCARD Result<BindingStats> GetStats(const std::string& queue,
                                const std::string& group) const;

 private:
  struct BoundState {
    Binding binding;
    BindingStats stats;
  };

  static std::string Key(const std::string& queue,
                         const std::string& group) {
    return queue + "\x01" + group;
  }

  QueueManager* const queues_;
  /// Lock order: this before QueueManager::mu_ (PumpOnce acks under it).
  mutable Mutex mu_{"QueueDispatcher::mu_"};
  std::map<std::string, BoundState> bindings_ EDADB_GUARDED_BY(mu_);
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;  // Start/Stop only; serialized by running_ CAS.
  /// Monotonic count of activity wakes (not timeouts) across workers.
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace edadb

#endif  // EDADB_MQ_DISPATCHER_H_
