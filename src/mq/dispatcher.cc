#include "mq/dispatcher.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "db/database.h"

namespace edadb {

namespace {

metrics::Counter* HandledCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.dispatch.handled");
  return c;
}

metrics::Counter* RetriesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("mq.dispatch.retries");
  return c;
}

metrics::Histogram* DispatchLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("mq.dispatch.latency_us");
  return h;
}

}  // namespace

QueueDispatcher::~QueueDispatcher() { Stop(); }

Status QueueDispatcher::Bind(Binding binding) {
  if (binding.handler == nullptr) {
    return Status::InvalidArgument("binding needs a handler");
  }
  if (!queues_->HasQueue(binding.queue)) {
    return Status::NotFound("queue '" + binding.queue + "'");
  }
  MutexLock lock(&mu_);
  const std::string key = Key(binding.queue, binding.group);
  auto [it, inserted] = bindings_.emplace(key, BoundState{});
  if (!inserted) {
    return Status::AlreadyExists("binding for queue '" + binding.queue +
                                 "' group '" + binding.group +
                                 "' already exists");
  }
  it->second.binding = std::move(binding);
  return Status::OK();
}

Status QueueDispatcher::Unbind(const std::string& queue,
                               const std::string& group) {
  MutexLock lock(&mu_);
  if (bindings_.erase(Key(queue, group)) == 0) {
    return Status::NotFound("no binding for queue '" + queue + "' group '" +
                            group + "'");
  }
  return Status::OK();
}

Result<size_t> QueueDispatcher::PumpOnce() {
  // Snapshot bindings so handlers can (un)bind reentrantly.
  std::vector<Binding> bindings;
  {
    MutexLock lock(&mu_);
    bindings.reserve(bindings_.size());
    for (const auto& [key, state] : bindings_) {
      bindings.push_back(state.binding);
    }
  }
  size_t handled_total = 0;
  for (const Binding& binding : bindings) {
    DequeueRequest request;
    request.group = binding.group;
    request.selector = binding.selector;
    for (;;) {
      EDADB_ASSIGN_OR_RETURN(std::optional<Message> message,
                             queues_->Dequeue(binding.queue, request));
      if (!message.has_value()) break;
      // End-to-end delivery latency: enqueue (wall, persisted) to the
      // moment the handler gets the message — a wall-wall difference,
      // so a domain-free duration. Clamped: a wall step between the two
      // reads can make it negative.
      DispatchLatency()->Record(static_cast<uint64_t>(
          std::max<TimestampMicros>(
              0, queues_->db()->clock()->WallNow() -
                     WallMicros::FromMicros(message->enqueue_time))));
      const Status status = binding.handler(*message);
      MutexLock lock(&mu_);
      auto it = bindings_.find(Key(binding.queue, binding.group));
      if (status.ok()) {
        EDADB_RETURN_IF_ERROR(
            queues_->Ack(binding.queue, binding.group, message->id));
        if (it != bindings_.end()) ++it->second.stats.handled;
        HandledCounter()->Add(1);
        ++handled_total;
      } else {
        EDADB_LOG(Warn) << "handler for queue '" << binding.queue
                        << "' failed: " << status;
        EDADB_RETURN_IF_ERROR(
            queues_->Nack(binding.queue, binding.group, message->id));
        if (it != bindings_.end()) ++it->second.stats.failed;
        RetriesCounter()->Add(1);
        // Leave the message for redelivery policy; stop this binding's
        // drain to avoid hot-looping on a poisoned head.
        break;
      }
    }
  }
  return handled_total;
}

Status QueueDispatcher::Start(TimestampMicros idle_wait_micros,
                              size_t num_workers) {
  if (num_workers == 0) {
    return Status::InvalidArgument("dispatcher needs at least one worker");
  }
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("dispatcher already running");
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, idle_wait_micros] {
      while (running_.load(std::memory_order_acquire)) {
        // Read the activity sequence BEFORE pumping: anything enqueued
        // while the pump runs changes the seq, so the wait below returns
        // immediately instead of missing it.
        const uint64_t seq = queues_->activity_seq();
        auto pumped = PumpOnce();
        if (!pumped.ok()) {
          EDADB_LOG(Warn) << "dispatcher pump failed: " << pumped.status();
        }
        if (!pumped.ok() || *pumped == 0) {
          // Idle: block until new queue activity (or the fallback bound,
          // which re-polls bindings added after the pump snapshot).
          if (queues_->WaitForActivity(seq, idle_wait_micros)) {
            wakeups_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  return Status::OK();
}

void QueueDispatcher::Stop() {
  running_.store(false, std::memory_order_release);
  // Workers may be parked in WaitForActivity; bump the sequence so they
  // wake, re-check running_, and exit.
  queues_->WakeWaiters();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Result<QueueDispatcher::BindingStats> QueueDispatcher::GetStats(
    const std::string& queue, const std::string& group) const {
  MutexLock lock(&mu_);
  auto it = bindings_.find(Key(queue, group));
  if (it == bindings_.end()) {
    return Status::NotFound("no binding for queue '" + queue + "'");
  }
  return it->second.stats;
}

}  // namespace edadb
