// A minimal SQL shell over edadb: the "database technology" surface a
// downstream user scripts against. Reads statements from stdin (one per
// line; lines starting with -- are comments); with no piped input it
// runs a short self-demo.
//
//   ./build/examples/sql_shell [data_dir]
//   echo "SELECT * FROM t" | ./build/examples/sql_shell /tmp/mydb

#include <cstdio>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/string_util.h"
#include "db/sql.h"

using namespace edadb;

namespace {

void PrintResult(const SqlResult& result) {
  switch (result.kind) {
    case SqlResult::Kind::kSelect: {
      // Header.
      const SchemaPtr& schema = result.result.schema;
      if (schema != nullptr) {
        for (size_t i = 0; i < schema->num_fields(); ++i) {
          std::printf("%s%s", i ? " | " : "", schema->field(i).name.c_str());
        }
        std::printf("\n");
      }
      for (const Record& row : result.result.rows) {
        for (size_t i = 0; i < row.num_values(); ++i) {
          std::printf("%s%s", i ? " | " : "",
                      row.value(i).ToString().c_str());
        }
        std::printf("\n");
      }
      std::printf("(%zu rows)\n", result.result.rows.size());
      break;
    }
    case SqlResult::Kind::kInsert:
    case SqlResult::Kind::kUpdate:
    case SqlResult::Kind::kDelete:
      std::printf("OK, %zu rows affected\n", result.rows_affected);
      break;
    case SqlResult::Kind::kDdl:
      std::printf("OK\n");
      break;
  }
}

int RunStatement(Database* db, const std::string& sql) {
  auto result = ExecuteSql(db, sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintResult(*result);
  return 0;
}

const char* const kDemo[] = {
    "CREATE TABLE readings (sensor STRING NOT NULL, zone STRING, "
    "temp DOUBLE)",
    "CREATE INDEX ON readings (zone)",
    "INSERT INTO readings VALUES ('s1', 'north', 20.5), "
    "('s2', 'north', 22.0), ('s3', 'south', 31.0), ('s4', 'south', 29.5)",
    "SELECT * FROM readings WHERE temp > 21 ORDER BY temp DESC",
    "UPDATE readings SET temp = temp - 1.5 WHERE zone = 'south'",
    "SELECT zone, COUNT(*), AVG(temp) AS avg_temp FROM readings "
    "GROUP BY zone ORDER BY zone",
    "DELETE FROM readings WHERE temp < 21",
    "SELECT COUNT(*) FROM readings",
};

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions options;
  options.dir = argc > 1 ? argv[1] : "/tmp/edadb_sql_shell";
  auto db = Database::Open(std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  if (isatty(STDIN_FILENO)) {
    std::printf("edadb sql shell — no piped input, running the demo:\n\n");
    for (const char* sql : kDemo) {
      std::printf("sql> %s\n", sql);
      RunStatement(db->get(), sql);
      std::printf("\n");
    }
    return 0;
  }

  std::string line;
  int failures = 0;
  while (std::getline(std::cin, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || StartsWith(trimmed, "--")) continue;
    std::printf("sql> %s\n", std::string(trimmed).c_str());
    failures += RunStatement(db->get(), std::string(trimmed));
  }
  return failures == 0 ? 0 : 1;
}
