// ChemSecure use case (§2.2.e.iii): "a NASA project to manage hazardous
// material. Any threat has to be known to the people who are authorized
// and able to respond most efficiently."
//
// Tank sensors push readings; rules stored in the database classify
// threats; the responder registry routes each threat to the closest
// available responder who is both AUTHORIZED (role) and ABLE
// (capability); every step is audited in database tables.
//
// Build & run:  ./build/examples/chemsecure

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "core/processor.h"
#include "common/macros.h"

using namespace edadb;

int main() {
  const std::string dir = "/tmp/edadb_chemsecure";
  std::filesystem::remove_all(dir);
  EventProcessorOptions options;
  options.data_dir = dir;
  auto processor_or = EventProcessor::Open(std::move(options));
  if (!processor_or.ok()) {
    std::fprintf(stderr, "%s\n", processor_or.status().ToString().c_str());
    return 1;
  }
  auto processor = *std::move(processor_or);

  // --- The response teams: authorization = roles, ability =
  // capabilities, efficiency = region proximity.
  auto add_responder = [&](const char* id, const char* role,
                           const char* capability, const char* region) {
    Responder r;
    r.id = id;
    r.roles = {role};
    r.capabilities = {capability};
    r.region = region;
    if (auto s = processor->responders()->RegisterResponder(std::move(r));
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
    }
  };
  add_responder("hazmat-east", "hazmat", "chemical", "east-wing");
  add_responder("hazmat-west", "hazmat", "chemical", "west-wing");
  add_responder("fire-east", "fire", "suppression", "east-wing");
  add_responder("security-1", "security", "escort", "gate");

  // --- Threat classification rules, stored as data in the database.
  RulesEngine* rules = processor->rules();
  EDADB_IGNORE_STATUS(rules->AddRule(
      "chemical_leak",
      "event_type = 'tank_reading' AND vapor_ppm > 400 AND "
      "substance IN ('hydrazine', 'ammonia')",
      "respond:hazmat:chemical", /*priority=*/10),
                      "demo setup; the rule predicate is a checked-in literal");
  EDADB_IGNORE_STATUS(rules->AddRule(
      "fire_risk",
      "event_type = 'tank_reading' AND temp_c > 60",
      "respond:fire:suppression", 9),
                      "demo setup; the rule predicate is a checked-in literal");
  EDADB_IGNORE_STATUS(rules->AddRule(
      "log_everything", "event_type = 'tank_reading'",
      "queue:audit_trail", 0),
                      "demo setup; the rule predicate is a checked-in literal");

  // --- Tank telemetry: mostly nominal, two injected incidents.
  Random rng(42);
  auto reading = [&](const char* tank, const char* substance,
                     const char* region, double ppm, double temp) {
    Event event;
    event.type = "tank_reading";
    event.source = tank;
    event.Set("substance", Value::String(substance));
    event.Set("region", Value::String(region));
    event.Set("vapor_ppm", Value::Double(ppm));
    event.Set("temp_c", Value::Double(temp));
    event.Set("severity",
              Value::Int64(ppm > 400 || temp > 60 ? 9 : 2));
    if (auto s = processor->Ingest(std::move(event)); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
    }
  };

  for (int i = 0; i < 200; ++i) {
    reading("tank-A1", "hydrazine", "east-wing",
            rng.Normal(50, 10), rng.Normal(20, 2));
    reading("tank-B2", "ammonia", "west-wing",
            rng.Normal(80, 15), rng.Normal(22, 2));
  }
  // Incident 1: hydrazine vapor spike in the east wing. The east hazmat
  // crew must get it (authorized + able + closest).
  reading("tank-A1", "hydrazine", "east-wing", 950.0, 25.0);
  // Incident 2: overheating tank — fire crew's problem.
  reading("tank-B2", "ammonia", "west-wing", 90.0, 75.0);

  // --- Who got notified?
  auto drain = [&](const std::string& queue) {
    size_t count = 0;
    for (;;) {
      DequeueRequest dq;
      auto message = processor->queues()->Dequeue(queue, dq);
      if (!message.ok() || !message->has_value()) break;
      ++count;
      std::printf("  %s received:", queue.c_str());
      for (const auto& [name, value] : (*message)->attributes) {
        if (name == "event_source" || name == "substance" ||
            name == "vapor_ppm" || name == "temp_c") {
          std::printf(" %s=%s", name.c_str(), value.ToString().c_str());
        }
      }
      std::printf("\n");
      EDADB_IGNORE_STATUS(processor->queues()->Ack(queue, "", (*message)->id),
                      "demo drain loop; a failed ack only redelivers and re-prints the alert");
    }
    return count;
  };
  std::printf("incident notifications:\n");
  const size_t east = drain("__responder_hazmat-east");
  const size_t west = drain("__responder_hazmat-west");
  const size_t fire = drain("__responder_fire-east");

  const auto stats = processor->GetStats();
  const auto audit_depth =
      processor->queues()->Depth("audit_trail", "");
  std::printf("\ningested=%llu matched=%llu dispatched=%llu "
              "audit_backlog=%zu\n",
              static_cast<unsigned long long>(stats.ingested),
              static_cast<unsigned long long>(stats.rules_matched),
              static_cast<unsigned long long>(
                  stats.dispatched_to_responders),
              audit_depth.ok() ? *audit_depth : 0);

  // The east crew (closest authorized+able) must have the leak; the
  // west crew must NOT have been paged for it.
  if (east != 1 || west != 0 || fire != 1) {
    std::fprintf(stderr,
                 "routing wrong: east=%zu west=%zu fire=%zu\n", east,
                 west, fire);
    return 1;
  }
  std::printf("chemsecure done.\n");
  return 0;
}
