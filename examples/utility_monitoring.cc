// Utilities use case (§2.2.e.ii): "utilities use event processing for
// monitoring current usage and usage patterns."
//
// Smart-meter readings land in a `readings` table. Capture runs through
// the journal miner (asynchronous, zero overhead on the ingest path,
// like a production metering pipeline). Each meter gets an expectation
// model of its usage; deviations (leak? theft? outage?) raise alerts
// that a continuous query over the alert table then distributes.
//
// Build & run:  ./build/examples/utility_monitoring

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "core/monitor.h"
#include "core/sources.h"
#include "cq/continuous_query.h"
#include "db/database.h"
#include "common/macros.h"

using namespace edadb;

int main() {
  const std::string dir = "/tmp/edadb_utility";
  std::filesystem::remove_all(dir);
  DatabaseOptions options;
  options.dir = dir;
  auto db_or = Database::Open(std::move(options));
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = *std::move(db_or);

  SchemaPtr readings_schema = Schema::Make({
      {"meter", ValueType::kString, false},
      {"kwh", ValueType::kDouble, false},
      {"hour", ValueType::kInt64, false},
  });
  SchemaPtr alerts_schema = Schema::Make({
      {"meter", ValueType::kString, false},
      {"kwh", ValueType::kDouble, false},
      {"expected", ValueType::kDouble, false},
      {"sigmas", ValueType::kDouble, false},
  });
  EDADB_IGNORE_STATUS(db->CreateTable("readings", readings_schema),
                      "demo setup; the schema is a checked-in literal");
  EDADB_IGNORE_STATUS(db->CreateTable("usage_alerts", alerts_schema),
                      "demo setup; the schema is a checked-in literal");

  // Expectation models per meter: Holt handles the daily ramp.
  DeviationDetector::Options detector_options;
  detector_options.threshold_sigmas = 8.0;
  detector_options.min_uncertainty = 0.3;
  ExpectationMonitor monitor(
      [] { return std::make_unique<HoltForecaster>(0.4, 0.2); },
      detector_options,
      [&](const std::string& meter, TimestampMicros, double kwh,
          const DetectionResult& result) {
        auto row = RecordBuilder(alerts_schema)
                       .SetString("meter", meter)
                       .SetDouble("kwh", kwh)
                       .SetDouble("expected", result.expected)
                       .SetDouble("sigmas", result.score)
                       .Build();
        EDADB_IGNORE_STATUS(db->Insert("usage_alerts", *std::move(row)),
                      "demo sink; a failed insert only drops the sample alert row");
      });

  // Asynchronous capture from the journal feeds the monitor.
  JournalEventSource capture(
      db.get(),
      [&](const Event& event) {
        const auto meter = event.Get("meter");
        const auto kwh = event.Get("kwh");
        if (meter.has_value() && kwh.has_value()) {
          EDADB_IGNORE_STATUS(monitor.Process(meter->string_value(), event.timestamp,
                                kwh->double_value()),
                      "demo feed loop; a per-reading failure only thins the printed output");
        }
      },
      "readings", "meter_reading");

  // A continuous query watches per-meter alert counts: result-set
  // changes are the notifications (§2.2.a.iii) — a meter appearing or
  // its count rising means "look at this meter now".
  size_t notified = 0;
  ContinuousQueryWatcher alert_watch(
      db.get(),
      QueryBuilder("usage_alerts").GroupBy({"meter"}).Count("alerts").Build(),
      {"meter"}, [&](const RowChange& change) {
        if (change.kind != RowChangeKind::kRemoved) {
          ++notified;
          if (notified <= 5) {
            std::printf("  notify dispatch: %s\n",
                        change.after->ToString().c_str());
          }
        }
      });
  EDADB_IGNORE_STATUS(alert_watch.Poll(),
                      "demo poll; a failed poll only delays the printed alerts");

  // --- Simulate two days of hourly readings for 20 meters, with one
  // meter developing a fault on day 2.
  Random rng(777);
  for (int hour = 0; hour < 48; ++hour) {
    for (int m = 0; m < 20; ++m) {
      const std::string meter = "meter-" + std::to_string(m);
      // Diurnal pattern: base + peak in the evening + noise.
      const int hod = hour % 24;
      double kwh = 0.6 + (hod >= 18 && hod <= 22 ? 1.8 : 0.0) +
                   0.05 * m + rng.Normal(0, 0.05);
      if (m == 7 && hour >= 30) kwh += 6.0;  // Fault: constant heavy draw.
      auto row = RecordBuilder(readings_schema)
                     .SetString("meter", meter)
                     .SetDouble("kwh", kwh)
                     .SetInt64("hour", hour)
                     .Build();
      EDADB_IGNORE_STATUS(db->Insert("readings", *std::move(row)),
                      "demo feed loop; a failed insert only drops the sample reading");
    }
    // Periodic mining + alert distribution, as a scheduler would.
    EDADB_IGNORE_STATUS(capture.Poll(),
                      "demo poll; a failed poll only delays the printed output");
    EDADB_IGNORE_STATUS(alert_watch.Poll(),
                      "demo poll; a failed poll only delays the printed alerts");
  }

  // Usage-pattern reporting straight from the database: per-meter totals.
  Query report = QueryBuilder("readings")
                     .GroupBy({"meter"})
                     .Sum("kwh", "total_kwh")
                     .OrderByDesc("total_kwh")
                     .Limit(3)
                     .Build();
  auto top = db->Execute(report);
  std::printf("\ntop consumers (48h):\n");
  if (top.ok()) {
    for (const Record& row : top->rows) {
      std::printf("  %s\n", row.ToString().c_str());
    }
  }

  const auto alert_count = db->CountRows("usage_alerts");
  std::printf("\nreadings captured: %llu, alerts raised: %zu, "
              "notifications: %zu\n",
              static_cast<unsigned long long>(capture.captured()),
              alert_count.ok() ? *alert_count : 0, notified);
  if (notified == 0) {
    std::fprintf(stderr, "expected the faulty meter to be flagged!\n");
    return 1;
  }
  std::printf("utility_monitoring done.\n");
  return 0;
}
