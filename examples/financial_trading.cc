// Financial services use case (§2.2.e.i): "event processing to execute
// online transactions, to react to opportunities and threats and to
// identify new opportunities and threats."
//
// A synthetic tick stream flows through three detectors:
//   - a CEP pattern (three consecutive drops then a rebound, per symbol)
//     flags a *dip-and-recover* buying opportunity;
//   - a sliding-window aggregation computes 1-second OHLC-style stats;
//   - an expectation model (EWMA) flags abnormal price jumps as threats.
// Opportunities and threats are staged on queues a trading desk drains.
//
// Build & run:  ./build/examples/financial_trading

#include <cstdio>
#include <filesystem>
#include <map>

#include "common/random.h"
#include "core/monitor.h"
#include "core/processor.h"
#include "cq/pattern.h"
#include "cq/window.h"
#include "common/macros.h"
#include "mq/queue_manager.h"

using namespace edadb;

namespace {

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"price", ValueType::kDouble, false},
      {"delta", ValueType::kDouble, false},
  });
}

}  // namespace

int main() {
  const std::string dir = "/tmp/edadb_financial";
  std::filesystem::remove_all(dir);
  EventProcessorOptions options;
  options.data_dir = dir;
  auto processor = EventProcessor::Open(std::move(options));
  if (!processor.ok()) {
    std::fprintf(stderr, "%s\n", processor.status().ToString().c_str());
    return 1;
  }
  QueueService* queues = (*processor)->queues();
  for (const char* queue : {"opportunities", "threats"}) {
    if (auto s = queues->CreateQueue(queue); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // --- CEP: dip (3+ consecutive drops) then rebound, per symbol.
  PatternSpec dip;
  dip.name = "dip_and_recover";
  PatternStep drop;
  drop.name = "drops";
  drop.condition = *Predicate::Compile("delta < 0");
  drop.one_or_more = true;
  PatternStep rebound;
  rebound.name = "rebound";
  rebound.condition = *Predicate::Compile("delta > 0.5");
  dip.steps = {drop, rebound};
  dip.within_micros = 10 * kMicrosPerSecond;
  dip.partition_by = "symbol";
  size_t opportunities = 0;
  auto pattern = *PatternMatcher::Create(dip, [&](const PatternMatch& m) {
    ++opportunities;
    EnqueueRequest request;
    request.payload = "dip-and-recover on " +
                      m.partition_key.string_value();
    request.attributes = {
        {"symbol", m.partition_key},
        {"drops", Value::Int64(static_cast<int64_t>(
                      m.bindings[0].second.size()))}};
    EDADB_IGNORE_STATUS(queues->Enqueue("opportunities", request),
                      "demo fan-out; a failed enqueue only drops the sample opportunity");
  });

  // --- Windowed stats: count/avg/min/max per symbol per second.
  WindowAggregatorOptions window_options;
  window_options.window_size_micros = kMicrosPerSecond;
  window_options.key_column = "symbol";
  window_options.aggregates = {
      {Aggregate::Func::kCount, "", "ticks"},
      {Aggregate::Func::kAvg, "price", "vwap_ish"},
      {Aggregate::Func::kMin, "price", "low"},
      {Aggregate::Func::kMax, "price", "high"}};
  size_t windows = 0;
  WindowedAggregator window(window_options, [&](const WindowResult& r) {
    ++windows;
    if (windows <= 4) {
      std::printf("  window %s\n", r.ToString().c_str());
    }
  });

  // --- Management by exception: abnormal jumps are threats.
  DeviationDetector::Options detector_options;
  detector_options.threshold_sigmas = 5.0;
  detector_options.min_uncertainty = 0.05;
  ExpectationMonitor monitor(
      [] { return std::make_unique<EwmaForecaster>(0.1); },
      detector_options,
      [&](const std::string& symbol, TimestampMicros, double price,
          const DetectionResult& result) {
        EnqueueRequest request;
        request.payload = "abnormal move on " + symbol;
        request.attributes = {{"symbol", Value::String(symbol)},
                              {"price", Value::Double(price)},
                              {"sigmas", Value::Double(result.score)}};
        request.priority = 9;
        EDADB_IGNORE_STATUS(queues->Enqueue("threats", request),
                      "demo fan-out; a failed enqueue only drops the sample threat");
      });

  // --- Synthetic market: random walks + one engineered dip + one shock.
  Random rng(2007);
  const char* symbols[] = {"ACME", "GLOBEX", "INITECH"};
  std::map<std::string, double> price = {
      {"ACME", 100}, {"GLOBEX", 250}, {"INITECH", 40}};
  TimestampMicros ts = 0;
  SchemaPtr schema = TickSchema();
  auto push_tick = [&](const std::string& symbol, double delta) {
    price[symbol] += delta;
    Record tick(schema, {Value::String(symbol),
                         Value::Double(price[symbol]),
                         Value::Double(delta)});
    ts += 20 * kMicrosPerMilli;
    EDADB_IGNORE_STATUS(pattern->Push(tick, ts),
                      "demo feed loop; a per-tick failure only thins the printed output");
    EDADB_IGNORE_STATUS(window.Push(tick, ts),
                      "demo feed loop; a per-tick failure only thins the printed output");
    EDADB_IGNORE_STATUS(monitor.Process(symbol, ts, price[symbol]),
                      "demo feed loop; a per-tick failure only thins the printed output");
  };

  for (int i = 0; i < 2000; ++i) {
    const std::string symbol = symbols[rng.Uniform(3)];
    push_tick(symbol, rng.Normal(0, 0.05));
    if (i == 800) {
      // Engineered dip-and-recover on ACME.
      for (int d = 0; d < 4; ++d) push_tick("ACME", -0.4);
      push_tick("ACME", 1.2);
    }
    if (i == 1500) {
      // Price shock on INITECH: a threat.
      push_tick("INITECH", 15.0);
    }
  }
  EDADB_IGNORE_STATUS(window.Flush(),
                      "end-of-demo flush; leftover window contents are printed best-effort");

  std::printf("\nprocessed 2000+ ticks, %zu windows emitted\n", windows);
  std::printf("pattern matches (opportunities): %zu\n", opportunities);

  auto drain = [&](const char* queue) {
    std::printf("%s:\n", queue);
    for (;;) {
      DequeueRequest dq;
      auto message = queues->Dequeue(queue, dq);
      if (!message.ok() || !message->has_value()) break;
      std::printf("  %s\n", (*message)->payload.c_str());
      EDADB_IGNORE_STATUS(queues->Ack(queue, "", (*message)->id),
                      "demo drain loop; a failed ack only redelivers and re-prints the message");
    }
  };
  drain("opportunities");
  drain("threats");

  if (opportunities == 0) {
    std::fprintf(stderr, "expected at least one opportunity!\n");
    return 1;
  }
  std::printf("financial_trading done.\n");
  return 0;
}
