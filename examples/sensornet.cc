// SensorNet use case (§2.2.e.iv): "a US government project to capture a
// wide variety of data and deliver them to first responders who are
// authorized, available and able to respond most efficiently."
//
// A field of heterogeneous sensors produces an event storm. The VIRT
// filter ("Valuable Information at the Right Time") keeps first
// responders from drowning: relevance, value, novelty and rate gates
// each consumer. What passes is distributed via durable pub/sub.
//
// Build & run:  ./build/examples/sensornet

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "core/processor.h"
#include "common/macros.h"

using namespace edadb;

int main() {
  const std::string dir = "/tmp/edadb_sensornet";
  std::filesystem::remove_all(dir);
  EventProcessorOptions options;
  options.data_dir = dir;
  auto processor_or = EventProcessor::Open(std::move(options));
  if (!processor_or.ok()) {
    std::fprintf(stderr, "%s\n", processor_or.status().ToString().c_str());
    return 1;
  }
  auto processor = *std::move(processor_or);
  VirtFilter* virt = processor->virt();

  // --- Three consumers with very different information needs.
  // A field medic: only medical events in their sector, no repeats.
  {
    VirtFilter::ConsumerOptions consumer;
    consumer.interest =
        *Predicate::Compile("kind = 'casualty' AND sector = 'north'");
    consumer.dedup_window_micros = 5 * kMicrosPerMinute;
    EDADB_IGNORE_STATUS(virt->RegisterConsumer("medic-north", consumer),
                      "demo setup; consumer names are checked-in literals");
  }
  // An incident commander: everything important, but at most ~10
  // notifications per simulated minute.
  {
    VirtFilter::ConsumerOptions consumer;
    consumer.min_value_score = 0.6;
    consumer.rate_limit_per_second = 10.0 / 60.0;
    consumer.rate_burst = 5;
    EDADB_IGNORE_STATUS(virt->RegisterConsumer("commander", consumer),
                      "demo setup; consumer names are checked-in literals");
  }
  // An analyst archive: everything, unfiltered.
  EDADB_IGNORE_STATUS(virt->RegisterConsumer("archive", {}),
                      "demo setup; consumer names are checked-in literals");

  // Durable delivery queues per consumer.
  for (const char* consumer : {"medic-north", "commander", "archive"}) {
    EDADB_IGNORE_STATUS(processor->queues()->CreateQueue(std::string("inbox_") + consumer),
                      "demo setup; an existing queue is fine to reuse");
  }

  // --- The storm: 5000 sensor events over a simulated half hour.
  SimulatedClock* clock = nullptr;
  SimulatedClock sim_clock(0);
  clock = &sim_clock;
  Random rng(1169);
  const char* kinds[] = {"smoke", "casualty", "structural", "chemical",
                         "comms"};
  const char* sectors[] = {"north", "south", "east", "west"};
  uint64_t delivered_total = 0;
  for (int i = 0; i < 5000; ++i) {
    clock->AdvanceMicros(30 * kMicrosPerHour / 5000 / 2);
    Event event;
    event.id = NextEventId();
    event.type = "sensor";
    const char* kind = kinds[rng.Uniform(5)];
    const char* sector = sectors[rng.Uniform(4)];
    event.source = std::string("sensor-") +
                   std::to_string(rng.Uniform(200));
    event.timestamp = clock->NowMicros();
    event.Set("kind", Value::String(kind));
    event.Set("sector", Value::String(sector));
    // Mostly low-value chatter; occasional critical events.
    const int64_t severity =
        rng.OneIn(40) ? 8 + static_cast<int64_t>(rng.Uniform(3))
                      : 1 + static_cast<int64_t>(rng.Uniform(4));
    event.Set("severity", Value::Int64(severity));
    // Repeated detections of the same incident share a dedup key.
    event.Set("dedup_key",
              Value::String(std::string(kind) + "@" + sector));

    for (const char* consumer : {"medic-north", "commander", "archive"}) {
      auto decision = virt->Evaluate(consumer, event);
      if (decision.ok() &&
          decision->verdict == VirtFilter::Verdict::kDeliver) {
        ++delivered_total;
        EnqueueRequest request;
        request.payload = event.ToString();
        request.attributes = event.attributes;
        EDADB_IGNORE_STATUS(processor->queues()->Enqueue(
            std::string("inbox_") + consumer, request),
                      "demo fan-out; a failed enqueue only drops the sample notification");
      }
    }
  }

  // --- Report: the information-overload numbers.
  std::printf("event storm: 5000 events x 3 consumers\n\n");
  uint64_t suppressed_total = 0;
  for (const char* consumer : {"medic-north", "commander", "archive"}) {
    const auto stats = *virt->GetStats(consumer);
    suppressed_total += stats.suppressed();
    std::printf(
        "%-12s delivered=%-5llu suppressed=%llu "
        "(irrelevant=%llu low-value=%llu duplicate=%llu rate=%llu)\n",
        consumer, static_cast<unsigned long long>(stats.delivered),
        static_cast<unsigned long long>(stats.suppressed()),
        static_cast<unsigned long long>(stats.not_relevant),
        static_cast<unsigned long long>(stats.below_value),
        static_cast<unsigned long long>(stats.duplicate),
        static_cast<unsigned long long>(stats.rate_limited));
  }
  const double reduction =
      100.0 * static_cast<double>(suppressed_total) /
      static_cast<double>(suppressed_total + delivered_total);
  std::printf("\noverall suppression: %.1f%% of candidate deliveries\n",
              reduction);

  const auto medic = *virt->GetStats("medic-north");
  const auto archive = *virt->GetStats("archive");
  if (archive.delivered != 5000 || medic.delivered == 0 ||
      medic.delivered > 200) {
    std::fprintf(stderr, "unexpected filtering behaviour\n");
    return 1;
  }
  std::printf("sensornet done.\n");
  return 0;
}
