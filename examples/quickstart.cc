// Quickstart: the smallest end-to-end event-driven application on
// edadb. It walks the tutorial's loop once:
//
//   1. a table stores raw measurements (the database as event source),
//   2. an AFTER trigger turns committed rows into events,
//   3. a rule — an "expression as data" — spots the critical condition,
//   4. the matched event is staged on a persistent queue,
//   5. a consumer dequeues and acknowledges it.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/processor.h"
#include "core/sources.h"
#include "common/macros.h"

using namespace edadb;  // Example code; library code never does this.

int main() {
  // Fresh scratch directory per run.
  const std::string dir = "/tmp/edadb_quickstart";
  std::filesystem::remove_all(dir);

  // 1. Open the assembled stack: database + queues + rules + broker.
  EventProcessorOptions options;
  options.data_dir = dir;
  auto processor = EventProcessor::Open(std::move(options));
  if (!processor.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }
  Database* db = (*processor)->db();

  // 2. A table of sensor readings...
  auto schema = Schema::Make({
      {"sensor", ValueType::kString, /*nullable=*/false},
      {"temp_c", ValueType::kDouble, false},
  });
  if (auto created = db->CreateTable("readings", schema); !created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  // ...captured by trigger into the processing pipeline.
  if (auto attached = (*processor)->AttachTriggerCapture("readings",
                                                         "reading");
      !attached.ok()) {
    std::fprintf(stderr, "%s\n", attached.ToString().c_str());
    return 1;
  }

  // 3. The critical condition, stored as data, routed to a queue.
  if (auto added = (*processor)->rules()->AddRule(
          "overheating", "event_type = 'reading' AND temp_c > 80",
          "queue:alerts");
      !added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }

  // 4. Insert measurements; capture and evaluation happen on commit.
  auto insert = [&](const char* sensor, double temp) {
    auto row = RecordBuilder(schema)
                   .SetString("sensor", sensor)
                   .SetDouble("temp_c", temp)
                   .Build();
    if (auto id = db->Insert("readings", *std::move(row)); !id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    }
  };
  insert("boiler-1", 65.0);  // Normal.
  insert("boiler-2", 91.5);  // Critical.
  insert("boiler-1", 72.0);  // Normal.
  insert("boiler-2", 95.0);  // Critical.

  // 5. Consume staged alerts.
  std::printf("draining the alerts queue:\n");
  size_t alerts = 0;
  for (;;) {
    DequeueRequest dq;
    auto message = (*processor)->queues()->Dequeue("alerts", dq);
    if (!message.ok() || !message->has_value()) break;
    std::printf("  alert #%llu:",
                static_cast<unsigned long long>((*message)->id));
    for (const auto& [name, value] : (*message)->attributes) {
      if (name == "sensor" || name == "temp_c") {
        std::printf(" %s=%s", name.c_str(), value.ToString().c_str());
      }
    }
    std::printf("\n");
    EDADB_IGNORE_STATUS((*processor)->queues()->Ack("alerts", "", (*message)->id),
                      "demo drain loop; a failed ack only redelivers and re-prints the alert");
    ++alerts;
  }

  const auto stats = (*processor)->GetStats();
  std::printf(
      "\ningested %llu events, %llu rule matches, %llu staged, "
      "%zu consumed\n",
      static_cast<unsigned long long>(stats.ingested),
      static_cast<unsigned long long>(stats.rules_matched),
      static_cast<unsigned long long>(stats.routed_to_queues), alerts);
  if (alerts != 2) {
    std::fprintf(stderr, "expected 2 alerts!\n");
    return 1;
  }
  std::printf("quickstart done.\n");
  return 0;
}
