// Experiment E6 — publish/subscribe fanout (§2.2.c.i): publish
// throughput against growing subscription populations, comparing
// exact-topic subscriptions (hash-indexable) with content-based filters
// and glob patterns. Expected shape: publish cost tracks the number of
// MATCHING subscriptions, not the total population, because
// subscriptions compile into the indexed rule matcher.

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "mq/queue_manager.h"
#include "pubsub/broker.h"

namespace edadb {
namespace {

struct BrokerFixture {
  bench::BenchDir dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<QueueManager> queues;
  std::unique_ptr<Broker> broker;
  uint64_t delivered = 0;

  BrokerFixture() {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db = *Database::Open(std::move(options));
    queues = *QueueManager::Attach(db.get());
    broker = *Broker::Attach(db.get(), queues.get());
  }

  void AddHandlerSub(const std::string& topic_pattern,
                     const std::string& filter) {
    SubscriptionSpec spec;
    spec.subscriber = "bench";
    spec.topic_pattern = topic_pattern;
    spec.content_filter = filter;
    spec.handler = [this](const Publication&) { ++delivered; };
    if (!broker->Subscribe(std::move(spec)).ok()) std::abort();
  }
};

/// N exact-topic subscribers spread over 100 topics; each publish
/// matches ~N/100.
void BM_PublishExactTopics(benchmark::State& state) {
  const int64_t subs = state.range(0);
  BrokerFixture fx;
  for (int64_t i = 0; i < subs; ++i) {
    fx.AddHandlerSub("topic/" + std::to_string(i % 100), "");
  }
  Random rng(1);
  Publication pub;
  pub.payload = "x";
  for (auto _ : state) {
    pub.topic = "topic/" + std::to_string(rng.Uniform(100));
    auto n = fx.broker->Publish(pub);
    if (!n.ok()) std::abort();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["subscriptions"] = static_cast<double>(subs);
  state.counters["deliveries_per_publish"] =
      static_cast<double>(fx.delivered) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_PublishExactTopics)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Content-based subscriptions: equality + range filter per subscriber.
void BM_PublishContentFiltered(benchmark::State& state) {
  const int64_t subs = state.range(0);
  BrokerFixture fx;
  Random rng(2);
  for (int64_t i = 0; i < subs; ++i) {
    fx.AddHandlerSub(
        "", StringPrintf("shard = %lld AND severity >= %lld",
                         static_cast<long long>(i % 256),
                         static_cast<long long>(rng.UniformInt(3, 9))));
  }
  Publication pub;
  pub.payload = "x";
  pub.topic = "t";
  for (auto _ : state) {
    pub.attributes = {
        {"shard", Value::Int64(rng.UniformInt(0, 255))},
        {"severity", Value::Int64(rng.UniformInt(0, 10))}};
    auto n = fx.broker->Publish(pub);
    if (!n.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["subscriptions"] = static_cast<double>(subs);
  state.counters["deliveries_per_publish"] =
      static_cast<double>(fx.delivered) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_PublishContentFiltered)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Glob subscriptions cannot be hash-indexed (LIKE residual → scan
/// list): the anti-pattern the indexed matcher cannot save you from.
void BM_PublishGlobSubscriptions(benchmark::State& state) {
  const int64_t subs = state.range(0);
  BrokerFixture fx;
  for (int64_t i = 0; i < subs; ++i) {
    fx.AddHandlerSub("sensors/" + std::to_string(i) + "/*", "");
  }
  Random rng(3);
  Publication pub;
  pub.payload = "x";
  for (auto _ : state) {
    pub.topic = "sensors/" + std::to_string(rng.Uniform(subs)) + "/temp";
    if (!fx.broker->Publish(pub).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["subscriptions"] = static_cast<double>(subs);
}
BENCHMARK(BM_PublishGlobSubscriptions)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

/// Durable fanout: every delivery is a persistent enqueue.
void BM_PublishDurable(benchmark::State& state) {
  const int64_t subs = state.range(0);
  BrokerFixture fx;
  for (int64_t i = 0; i < subs; ++i) {
    SubscriptionSpec spec;
    spec.subscriber = "worker" + std::to_string(i);
    spec.topic_pattern = "jobs";
    spec.durable = true;
    if (!fx.broker->Subscribe(std::move(spec)).ok()) std::abort();
  }
  Publication pub;
  pub.topic = "jobs";
  pub.payload = "durable fanout";
  for (auto _ : state) {
    auto n = fx.broker->Publish(pub);
    if (!n.ok() || *n != static_cast<size_t>(subs)) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * subs);
  state.counters["subscriptions"] = static_cast<double>(subs);
}
BENCHMARK(BM_PublishDurable)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

/// Inline fan-out baseline for the live-feed scenario: N handler
/// subscriptions ALL matching every publish, so each publish invokes N
/// handlers synchronously. This is the path the event ring replaces for
/// live subscribers; BM_PublishLiveRing at 10k subscribers must beat
/// this at 100 by ≥10x (ISSUE 7 acceptance).
void BM_PublishInlineFanout(benchmark::State& state) {
  const int64_t subs = state.range(0);
  BrokerFixture fx;
  for (int64_t i = 0; i < subs; ++i) fx.AddHandlerSub("feed", "");
  Publication pub;
  pub.topic = "feed";
  pub.payload = "live tick";
  pub.attributes = {{"seq", Value::Int64(0)}};
  for (auto _ : state) {
    auto n = fx.broker->Publish(pub);
    if (!n.ok() || *n != static_cast<size_t>(subs)) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["subscribers"] = static_cast<double>(subs);
}
BENCHMARK(BM_PublishInlineFanout)->Arg(1)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

/// Live-ring scaling (DESIGN.md §13): N poll-based ring subscribers
/// drained by a couple of background poller threads while the publisher
/// runs flat out. Publish cost is O(1) in N — the ring is written once
/// per publish — and slow consumers show up as an accounted miss_rate
/// in the JSON output, never as publisher backpressure.
void BM_PublishLiveRing(benchmark::State& state) {
  const int64_t subs = state.range(0);
  constexpr int kPollers = 2;
  BrokerFixture fx;
  std::vector<std::shared_ptr<LiveSubscription>> live;
  live.reserve(static_cast<size_t>(subs));
  for (int64_t i = 0; i < subs; ++i) {
    auto sub = fx.broker->SubscribeLive(
        {.subscriber = "live-" + std::to_string(i),
         .topic_pattern = "",
         .content_filter = ""});
    if (!sub.ok()) std::abort();
    live.push_back(*std::move(sub));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int t = 0; t < kPollers; ++t) {
    pollers.emplace_back([&, t] {
      std::vector<std::pair<uint64_t, Publication>> got;
      while (!stop.load(std::memory_order_acquire)) {
        for (size_t s = static_cast<size_t>(t); s < live.size();
             s += kPollers) {
          got.clear();
          benchmark::DoNotOptimize(live[s]->Poll(64, &got));
        }
      }
    });
  }

  Publication pub;
  pub.topic = "feed";
  pub.payload = "live tick";
  pub.attributes = {{"seq", Value::Int64(0)}};
  for (auto _ : state) {
    auto n = fx.broker->Publish(pub);
    if (!n.ok()) std::abort();
    benchmark::DoNotOptimize(n);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : pollers) t.join();
  // Final sweep: drain what is still in the ring so every event ends
  // up either delivered or in the accounted miss tally.
  std::vector<std::pair<uint64_t, Publication>> got;
  uint64_t delivered = 0, missed = 0;
  for (const auto& sub : live) {
    while (sub->lag() > 0) {
      got.clear();
      if (sub->Poll(1024, &got) == 0 && sub->lag() > 0) break;
    }
    delivered += sub->delivered();
    missed += sub->missed();
  }
  const double observed = static_cast<double>(delivered + missed);
  state.SetItemsProcessed(state.iterations());
  state.counters["subscribers"] = static_cast<double>(subs);
  state.counters["ring_delivered"] = static_cast<double>(delivered);
  state.counters["ring_missed"] = static_cast<double>(missed);
  state.counters["miss_rate"] =
      observed > 0 ? static_cast<double>(missed) / observed : 0.0;
}
BENCHMARK(BM_PublishLiveRing)->Arg(1)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
