// Experiment E2 — message storage performance & scalability (§2.2.b.ii.2).
//
// Enqueue and dequeue+ack throughput through the database-backed staging
// areas, across payload sizes, WAL sync policies and consumer-group
// fanout. Expected shape: throughput falls with payload size and sync
// strictness; fanout to G groups costs ~G delivery rows per message.

#include <memory>
#include <mutex>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "mq/queue_manager.h"
#include "mq/shard_router.h"
#include "common/macros.h"

namespace edadb {
namespace {

struct QueueFixture {
  bench::BenchDir dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<QueueManager> queues;

  explicit QueueFixture(WalSyncPolicy sync = WalSyncPolicy::kNever) {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = sync;
    db = *Database::Open(std::move(options));
    queues = *QueueManager::Attach(db.get());
    if (!queues->CreateQueue("bench").ok()) std::abort();
  }
};

void BM_Enqueue(benchmark::State& state) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  QueueFixture fx;
  Random rng(1);
  EnqueueRequest request;
  request.payload = rng.NextString(payload_size);
  request.attributes = {{"severity", Value::Int64(5)},
                        {"region", Value::String("east")}};
  for (auto _ : state) {
    auto id = fx.queues->Enqueue("bench", request);
    if (!id.ok()) std::abort();
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload_size));
}
BENCHMARK(BM_Enqueue)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_EnqueueSyncPolicy(benchmark::State& state) {
  const auto policy = static_cast<WalSyncPolicy>(state.range(0));
  QueueFixture fx(policy);
  EnqueueRequest request;
  request.payload = "sync policy benchmark payload";
  for (auto _ : state) {
    if (!fx.queues->Enqueue("bench", request).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(policy == WalSyncPolicy::kNever
                     ? "sync=never"
                     : (policy == WalSyncPolicy::kOnCommit
                            ? "sync=on_commit"
                            : "sync=every_append"));
}
BENCHMARK(BM_EnqueueSyncPolicy)
    ->Arg(static_cast<int>(WalSyncPolicy::kNever))
    ->Arg(static_cast<int>(WalSyncPolicy::kOnCommit))
    ->Arg(static_cast<int>(WalSyncPolicy::kEveryAppend))
    ->Unit(benchmark::kMicrosecond);

void BM_EnqueueDequeueAck(benchmark::State& state) {
  QueueFixture fx;
  EnqueueRequest request;
  request.payload = "round trip";
  DequeueRequest dq;
  for (auto _ : state) {
    if (!fx.queues->Enqueue("bench", request).ok()) std::abort();
    auto message = fx.queues->Dequeue("bench", dq);
    if (!message.ok() || !message->has_value()) std::abort();
    if (!fx.queues->Ack("bench", "", (*message)->id).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueDequeueAck)->Unit(benchmark::kMicrosecond);

void BM_DequeueWithSelector(benchmark::State& state) {
  // Selector matches ~half the backlog; measures selector evaluation on
  // the dequeue path.
  QueueFixture fx;
  Random rng(2);
  DequeueRequest dq;
  dq.selector = *Predicate::Compile("severity >= 5");
  EnqueueRequest request;
  request.payload = "x";
  for (auto _ : state) {
    state.PauseTiming();
    request.attributes = {
        {"severity", Value::Int64(rng.UniformInt(0, 9))}};
    EDADB_IGNORE_STATUS(fx.queues->Enqueue("bench", request),
                      "bench drive loop; a failed enqueue surfaces as an empty dequeue in the measured path");
    request.attributes = {{"severity", Value::Int64(9)}};
    EDADB_IGNORE_STATUS(fx.queues->Enqueue("bench", request),
                      "bench drive loop; a failed enqueue surfaces as an empty dequeue in the measured path");
    state.ResumeTiming();
    auto message = fx.queues->Dequeue("bench", dq);
    if (!message.ok() || !message->has_value()) std::abort();
    if (!fx.queues->Ack("bench", "", (*message)->id).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeueWithSelector)->Unit(benchmark::kMicrosecond);

void BM_FanoutToGroups(benchmark::State& state) {
  const int64_t groups = state.range(0);
  QueueFixture fx;
  for (int64_t g = 0; g < groups; ++g) {
    if (!fx.queues->AddConsumerGroup("bench", "g" + std::to_string(g)).ok()) {
      std::abort();
    }
  }
  EnqueueRequest request;
  request.payload = "fanout";
  for (auto _ : state) {
    if (!fx.queues->Enqueue("bench", request).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * groups);
  state.counters["groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_FanoutToGroups)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_TransactionalEnqueueBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  QueueFixture fx;
  EnqueueRequest request;
  request.payload = "batched";
  for (auto _ : state) {
    auto txn = fx.db->BeginTransaction();
    for (int64_t i = 0; i < batch; ++i) {
      if (!fx.queues->EnqueueInTransaction(txn.get(), "bench", request)
               .ok()) {
        std::abort();
      }
    }
    if (!txn->Commit().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_TransactionalEnqueueBatch)->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

/// The tentpole measurement: batch-size sweep of EnqueueBatch (one
/// transaction, one WAL barrier) against the per-event Enqueue loop
/// (one of each per message), both under sync=on_commit so the fsync
/// amortization is what's being measured. range(0) = batch size,
/// range(1) = 1 for EnqueueBatch / 0 for the loop.
void BM_EnqueueBatchVsLoop(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool use_batch = state.range(1) != 0;
  QueueFixture fx(WalSyncPolicy::kOnCommit);
  std::vector<EnqueueRequest> requests(batch);
  for (auto& request : requests) {
    request.payload = "group commit sweep payload";
    request.attributes = {{"severity", Value::Int64(5)}};
  }
  for (auto _ : state) {
    if (use_batch) {
      if (!fx.queues->EnqueueBatch("bench", requests).ok()) std::abort();
    } else {
      for (const auto& request : requests) {
        if (!fx.queues->Enqueue("bench", request).ok()) std::abort();
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.SetLabel(use_batch ? "batch" : "loop");
}
BENCHMARK(BM_EnqueueBatchVsLoop)
    ->ArgsProduct({{1, 8, 64, 512}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Concurrent single-message enqueues under sync=on_commit: with the
/// WAL's leader/follower group commit, T threads committing at once
/// should share fdatasyncs rather than paying one each, so aggregate
/// items_per_second should grow with thread count.
void BM_ConcurrentEnqueueGroupCommit(benchmark::State& state) {
  static QueueFixture fx(WalSyncPolicy::kOnCommit);
  EnqueueRequest request;
  request.payload = "concurrent group commit";
  for (auto _ : state) {
    if (!fx.queues->Enqueue("bench", request).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentEnqueueGroupCommit)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The sharding measurement: 4 threads batch-enqueueing under
/// sync=on_commit, round-robin over 16 queues hash-routed across
/// range(0) delivery-core shards. One shard = every commit serializes
/// through one WAL stream and one queue lock domain; N shards = commits
/// on different shards overlap their fsyncs and contend on disjoint
/// locks, so aggregate items_per_second should grow with the shard
/// count even on few cores (the win is overlapped sync waits, not CPU).
struct ShardedQueueFixture {
  bench::BenchDir dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<ShardRouter> router;
  std::vector<std::string> queues;

  explicit ShardedQueueFixture(size_t shards) {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kOnCommit;
    db = *Database::Open(std::move(options));
    router = *ShardRouter::Open(db.get(), shards);
    for (int i = 0; i < 16; ++i) {
      const std::string name = "bench" + std::to_string(i);
      if (!router->CreateQueue(name).ok()) std::abort();
      queues.push_back(name);
    }
  }
};

void BM_ShardedEnqueueBatch(benchmark::State& state) {
  // Shared across the 4 threads of one run; rebuilt when the shard
  // count argument changes (first thread to arrive wins the race).
  static std::mutex fixture_mu;
  static std::unique_ptr<ShardedQueueFixture> fx;
  static int64_t fx_shards = -1;
  {
    std::lock_guard<std::mutex> lock(fixture_mu);
    if (fx_shards != state.range(0)) {
      fx.reset();
      fx = std::make_unique<ShardedQueueFixture>(
          static_cast<size_t>(state.range(0)));
      fx_shards = state.range(0);
    }
  }
  constexpr size_t kBatch = 64;
  std::vector<EnqueueRequest> requests(kBatch);
  for (auto& request : requests) {
    request.payload = "sharded batch enqueue payload";
  }
  // Stagger the starting queue per thread so threads spread over shards
  // instead of convoying on one.
  size_t next = static_cast<size_t>(state.thread_index()) * 4;
  for (auto _ : state) {
    const std::string& queue = fx->queues[next++ % fx->queues.size()];
    if (!fx->router->EnqueueBatch(queue, requests).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kBatch));
  // kAvgThreads: the shard count is a dimension, not a per-thread sum.
  state.counters["shards"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ShardedEnqueueBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// DequeueBatch draining a pre-filled backlog `batch` messages at a
/// time (locks persisted per message; the win is lock amortization on
/// the scan, not the WAL).
void BM_DequeueBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  QueueFixture fx;
  EnqueueRequest request;
  request.payload = "drain me";
  DequeueRequest dq;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<EnqueueRequest> refill(batch, request);
    if (!fx.queues->EnqueueBatch("bench", refill).ok()) std::abort();
    state.ResumeTiming();
    auto messages = fx.queues->DequeueBatch("bench", dq, batch);
    if (!messages.ok() || messages->size() != batch) std::abort();
    state.PauseTiming();
    for (const Message& message : *messages) {
      if (!fx.queues->Ack("bench", "", message.id).ok()) std::abort();
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_DequeueBatch)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
