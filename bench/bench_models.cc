// Experiment E8 — models, expectations, false positives & negatives
// (tutorial Part 1.f and the keyword list "errors, false positives,
// false negatives, statistics").
//
// A synthetic drifting signal with injected anomalies is scored by three
// expectation models (static threshold, EWMA, Holt). The threshold
// sweep becomes an ROC table printed to stdout; per-model AUC is the
// headline number. Expected shape: adaptive models dominate the static
// threshold on drifting signals (AUC_holt >= AUC_ewma >> AUC_static);
// scoring throughput is reported as an ordinary benchmark.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "analytics/detector.h"
#include "analytics/forecaster.h"
#include "benchmark/benchmark.h"
#include "bench_util.h"

namespace edadb {
namespace {

struct LabeledPoint {
  double value;
  bool anomaly;
};

/// Diurnal + linear-drift signal with N(0,1) noise and sporadic spikes.
std::vector<LabeledPoint> MakeSignal(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<LabeledPoint> signal;
  signal.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double value = 100.0 + 0.02 * t +                      // Drift.
                   8.0 * std::sin(t * 2 * M_PI / 200.0) +  // Cycle (200).
                   rng.Normal(0, 1.0);
    bool anomaly = false;
    if (i > 50 && rng.OneIn(100)) {
      value += (rng.OneIn(2) ? 1 : -1) * rng.UniformDouble(6.0, 15.0);
      anomaly = true;
    }
    signal.push_back({value, anomaly});
  }
  return signal;
}

std::unique_ptr<Forecaster> MakeModel(const std::string& name) {
  if (name == "static") {
    // Best fixed guess over the whole run (generous to the baseline).
    return std::make_unique<StaticForecaster>(130.0, 25.0);
  }
  if (name == "ewma") return std::make_unique<EwmaForecaster>(0.2);
  if (name == "holt") return std::make_unique<HoltForecaster>(0.5, 0.1);
  // Holt-Winters, seasonal period matched to the signal's cycle.
  return std::make_unique<SeasonalForecaster>(0.3, 0.05, 0.3, 200);
}

/// Scores the signal with a model; returns (score, label) pairs.
std::vector<std::pair<double, bool>> ScoreSignal(
    const std::string& model_name,
    const std::vector<LabeledPoint>& signal) {
  DeviationDetector::Options options;
  options.threshold_sigmas = 3.0;  // Irrelevant for ROC (we keep scores).
  options.min_uncertainty = 0.5;
  DeviationDetector detector(MakeModel(model_name), options);
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(signal.size());
  TimestampMicros ts = 0;
  for (const LabeledPoint& point : signal) {
    ts += kMicrosPerSecond;
    const DetectionResult result = detector.Process(ts, point.value);
    if (result.ready) scored.push_back({result.score, point.anomaly});
  }
  return scored;
}

/// Prints the paper-style table once: per-model operating points and
/// AUC.
void PrintRocTable() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const auto signal = MakeSignal(20000, 20070612);
  std::printf(
      "\n=== E8: detector quality on drifting signal "
      "(20000 points, ~1%% anomalies) ===\n");
  std::printf("%-8s %-8s %10s %10s %10s %10s\n", "model", "auc",
              "tpr@3sig", "fpr@3sig", "tpr@5sig", "fpr@5sig");
  for (const std::string model :
       {"static", "ewma", "holt", "holt_winters"}) {
    const auto scored = ScoreSignal(model, signal);
    const auto roc = ComputeRoc(scored);
    const double auc = RocAuc(roc);
    ConfusionMatrix at3, at5;
    for (const auto& [score, label] : scored) {
      at3.Add(score > 3.0, label);
      at5.Add(score > 5.0, label);
    }
    std::printf("%-8s %-8.3f %10.3f %10.4f %10.3f %10.4f\n", model.c_str(),
                auc, at3.recall(), at3.false_positive_rate(), at5.recall(),
                at5.false_positive_rate());
  }
  std::printf("\n");
}

void BM_DetectorThroughput(benchmark::State& state) {
  PrintRocTable();
  const char* const names[] = {"static", "ewma", "holt", "holt_winters"};
  const std::string model = names[state.range(0)];
  DeviationDetector::Options options;
  options.min_uncertainty = 0.5;
  DeviationDetector detector(MakeModel(model), options);
  Random rng(9);
  TimestampMicros ts = 0;
  for (auto _ : state) {
    ts += kMicrosPerSecond;
    auto result = detector.Process(ts, rng.Normal(100, 3));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(model);
}
BENCHMARK(BM_DetectorThroughput)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kNanosecond);

void BM_P2QuantileAdd(benchmark::State& state) {
  P2Quantile sketch(0.99);
  Random rng(10);
  for (auto _ : state) {
    sketch.Add(rng.Normal(100, 15));
  }
  benchmark::DoNotOptimize(sketch.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_P2QuantileAdd)->Unit(benchmark::kNanosecond);

void BM_RocComputation(benchmark::State& state) {
  Random rng(11);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 100000; ++i) {
    const bool anomaly = rng.OneIn(50);
    scored.push_back({rng.Normal(anomaly ? 6 : 0, 2), anomaly});
  }
  for (auto _ : state) {
    const auto roc = ComputeRoc(scored);
    benchmark::DoNotOptimize(RocAuc(roc));
  }
  state.SetItemsProcessed(state.iterations() * scored.size());
}
BENCHMARK(BM_RocComputation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
