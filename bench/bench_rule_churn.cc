// Experiment E5 — FREQUENTLY CHANGING RULE SETS (§2.2.c.iv.2.b).
//
// Interleaves rule add/remove churn with event matching and measures
// sustained operations per second at different churn ratios. Expected
// shape: the naive matcher is insensitive to churn (add/remove is a map
// insert) but slow to match; the indexed matcher pays index maintenance
// per change yet keeps a large overall advantage because matching
// dominates realistic mixes.

#include <deque>
#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "rules/indexed_matcher.h"
#include "rules/matcher.h"
#include "common/macros.h"

namespace edadb {
namespace {

constexpr int kNumAttrs = 8;
constexpr int64_t kCardinality = 1000;
constexpr int64_t kBaseRules = 10000;

void RunChurnBenchmark(benchmark::State& state, bool indexed) {
  // churn_permille = changes per 1000 operations; the rest are matches.
  const int64_t churn_permille = state.range(0);
  std::unique_ptr<RuleMatcher> matcher;
  if (indexed) {
    matcher = std::make_unique<IndexedMatcher>();
  } else {
    matcher = std::make_unique<NaiveMatcher>();
  }
  Random rng(4);
  std::deque<std::string> live;
  int64_t next_id = 0;
  auto add_rule = [&]() {
    Rule rule;
    rule.id = "r" + std::to_string(next_id++);
    rule.condition = *Predicate::Compile(
        bench::RandomRuleCondition(&rng, kNumAttrs, kCardinality));
    live.push_back(rule.id);
    if (!matcher->AddRule(std::move(rule)).ok()) std::abort();
  };
  for (int64_t i = 0; i < kBaseRules; ++i) add_rule();

  std::vector<bench::BenchEvent> events;
  for (int i = 0; i < 512; ++i) {
    events.push_back(bench::RandomRuleEvent(&rng, kNumAttrs, kCardinality));
  }

  size_t cursor = 0;
  int64_t op = 0;
  uint64_t churn_ops = 0;
  std::vector<const Rule*> out;
  for (auto _ : state) {
    // Deterministic interleave: every (1000/churn)th op is a change.
    const bool churn =
        churn_permille > 0 && (op % 1000) < churn_permille;
    if (churn) {
      // Replace the oldest rule (remove + add) to keep set size stable.
      if (!matcher->RemoveRule(live.front()).ok()) std::abort();
      live.pop_front();
      add_rule();
      ++churn_ops;
    } else {
      out.clear();
      matcher->Match(events[cursor], &out);
      cursor = (cursor + 1) % events.size();
      benchmark::DoNotOptimize(out);
    }
    ++op;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["churn_permille"] = static_cast<double>(churn_permille);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["rule_changes"] = static_cast<double>(churn_ops);
}

void BM_NaiveChurn(benchmark::State& state) {
  RunChurnBenchmark(state, /*indexed=*/false);
}
void BM_IndexedChurn(benchmark::State& state) {
  RunChurnBenchmark(state, /*indexed=*/true);
}

// 0 / 1% / 10% / 50% of operations are rule changes.
BENCHMARK(BM_NaiveChurn)->Arg(0)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexedChurn)->Arg(0)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

/// Pure mutation rates, for the maintenance-cost ablation.
void BM_IndexedAddRemove(benchmark::State& state) {
  IndexedMatcher matcher;
  Random rng(4);
  std::deque<std::string> live;
  int64_t next_id = 0;
  for (int64_t i = 0; i < kBaseRules; ++i) {
    Rule rule;
    rule.id = "r" + std::to_string(next_id++);
    rule.condition = *Predicate::Compile(
        bench::RandomRuleCondition(&rng, kNumAttrs, kCardinality));
    live.push_back(rule.id);
    EDADB_IGNORE_STATUS(matcher.AddRule(std::move(rule)),
                      "bench setup; a failed add would skew the live set and show up in the measured churn rate");
  }
  for (auto _ : state) {
    EDADB_IGNORE_STATUS(matcher.RemoveRule(live.front()),
                      "bench churn loop; failures would skew the live set and show up in the measured rate");
    live.pop_front();
    Rule rule;
    rule.id = "r" + std::to_string(next_id++);
    rule.condition = *Predicate::Compile(
        bench::RandomRuleCondition(&rng, kNumAttrs, kCardinality));
    live.push_back(rule.id);
    EDADB_IGNORE_STATUS(matcher.AddRule(std::move(rule)),
                      "bench churn loop; failures would skew the live set and show up in the measured rate");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedAddRemove)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
