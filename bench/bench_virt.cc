// Experiment E9 — VIRT: filtering information overload (tutorial
// overview: "this problem can be solved by identifying what information
// is critical ... and filtering out non-critical data").
//
// An event storm is pushed through the VIRT filter at increasing
// strictness; the table reports delivered volume, suppression ratio and
// how much of the *critical* traffic survives (recall). Expected shape:
// suppression climbs to 95%+ while critical-event recall stays near 1.0
// until the rate limiter starts clipping bursts. Gate cost is measured
// as an ordinary throughput benchmark.

#include <cstdio>
#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "core/virt.h"

namespace edadb {
namespace {

/// One storm event; ~2% are critical (severity >= 8).
Event StormEvent(Random* rng, TimestampMicros ts) {
  static const char* const kKinds[] = {"telemetry", "heartbeat", "status",
                                       "casualty", "smoke"};
  Event event;
  event.id = NextEventId();
  event.type = "sensor";
  event.source = "s" + std::to_string(rng->Uniform(500));
  event.timestamp = ts;
  const char* kind = kKinds[rng->Uniform(5)];
  event.Set("kind", Value::String(kind));
  const int64_t severity =
      rng->OneIn(50) ? 8 + static_cast<int64_t>(rng->Uniform(3))
                     : 1 + static_cast<int64_t>(rng->Uniform(5));
  event.Set("severity", Value::Int64(severity));
  event.Set("dedup_key",
            Value::String(std::string(kind) + "@" +
                          std::to_string(rng->Uniform(40))));
  return event;
}

struct GateConfig {
  const char* name;
  VirtFilter::ConsumerOptions options;
};

std::vector<GateConfig> Configs() {
  std::vector<GateConfig> configs;
  configs.push_back({"everything", {}});
  {
    VirtFilter::ConsumerOptions o;
    o.min_value_score = 0.5;
    configs.push_back({"value>=0.5", o});
  }
  {
    VirtFilter::ConsumerOptions o;
    o.min_value_score = 0.5;
    o.dedup_window_micros = 30 * kMicrosPerSecond;
    configs.push_back({"+dedup30s", o});
  }
  {
    VirtFilter::ConsumerOptions o;
    o.min_value_score = 0.5;
    o.dedup_window_micros = 30 * kMicrosPerSecond;
    o.rate_limit_per_second = 2.0;
    o.rate_burst = 10;
    configs.push_back({"+rate2/s", o});
  }
  {
    VirtFilter::ConsumerOptions o;
    o.min_value_score = 0.79;
    o.dedup_window_micros = 2 * kMicrosPerMinute;
    o.rate_limit_per_second = 1.0;
    o.rate_burst = 5;
    configs.push_back({"strict", o});
  }
  return configs;
}

void PrintSuppressionTable() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::printf(
      "\n=== E9: VIRT suppression on a 50k-event storm "
      "(~2%% critical) ===\n");
  std::printf("%-12s %10s %12s %12s %14s\n", "config", "delivered",
              "suppressed", "suppression", "critical_recall");
  for (const GateConfig& config : Configs()) {
    SimulatedClock clock(0);
    VirtFilter filter(&clock);
    if (!filter.RegisterConsumer("c", config.options).ok()) std::abort();
    Random rng(1169);
    uint64_t critical_total = 0;
    uint64_t critical_delivered = 0;
    for (int i = 0; i < 50000; ++i) {
      clock.AdvanceMicros(20 * kMicrosPerMilli);  // 50 events/sec.
      const Event event = StormEvent(&rng, clock.WallNow().micros());
      const bool critical = event.Get("severity")->int64_value() >= 8;
      if (critical) ++critical_total;
      auto decision = filter.Evaluate("c", event);
      if (decision.ok() &&
          decision->verdict == VirtFilter::Verdict::kDeliver && critical) {
        ++critical_delivered;
      }
    }
    const auto stats = *filter.GetStats("c");
    const double total =
        static_cast<double>(stats.delivered + stats.suppressed());
    std::printf("%-12s %10llu %12llu %11.1f%% %14.3f\n", config.name,
                static_cast<unsigned long long>(stats.delivered),
                static_cast<unsigned long long>(stats.suppressed()),
                100.0 * static_cast<double>(stats.suppressed()) / total,
                critical_total == 0
                    ? 0.0
                    : static_cast<double>(critical_delivered) /
                          static_cast<double>(critical_total));
  }
  std::printf("\n");
}

void BM_VirtEvaluate(benchmark::State& state) {
  PrintSuppressionTable();
  const auto configs = Configs();
  const GateConfig& config = configs[static_cast<size_t>(state.range(0))];
  SimulatedClock clock(0);
  VirtFilter filter(&clock);
  if (!filter.RegisterConsumer("c", config.options).ok()) std::abort();
  Random rng(7);
  for (auto _ : state) {
    clock.AdvanceMicros(1000);
    const Event event = StormEvent(&rng, clock.WallNow().micros());
    auto decision = filter.Evaluate("c", event);
    benchmark::DoNotOptimize(decision);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(config.name);
}
BENCHMARK(BM_VirtEvaluate)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kNanosecond);

/// Fanout: one event evaluated against many consumers.
void BM_VirtFanout(benchmark::State& state) {
  const int64_t consumers = state.range(0);
  SimulatedClock clock(0);
  VirtFilter filter(&clock);
  for (int64_t i = 0; i < consumers; ++i) {
    VirtFilter::ConsumerOptions options;
    options.min_value_score = 0.5;
    if (!filter
             .RegisterConsumer("consumer" + std::to_string(i), options)
             .ok()) {
      std::abort();
    }
  }
  Random rng(8);
  std::vector<std::string> ids;
  for (int64_t i = 0; i < consumers; ++i) {
    ids.push_back("consumer" + std::to_string(i));
  }
  for (auto _ : state) {
    clock.AdvanceMicros(1000);
    const Event event = StormEvent(&rng, clock.WallNow().micros());
    for (const std::string& id : ids) {
      auto decision = filter.Evaluate(id, event);
      benchmark::DoNotOptimize(decision);
    }
  }
  state.SetItemsProcessed(state.iterations() * consumers);
  state.counters["consumers"] = static_cast<double>(consumers);
}
BENCHMARK(BM_VirtFanout)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
