// Experiment E3 — recoverability & transactional support vs throughput
// (§2.2.b.ii.3): WAL append rates per sync policy and record size, and
// recovery time as a function of log length and checkpoint freshness.

#include <memory>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "db/database.h"
#include "storage/wal.h"
#include "common/macros.h"

namespace edadb {
namespace {

void BM_WalAppend(benchmark::State& state) {
  const auto policy = static_cast<WalSyncPolicy>(state.range(0));
  const size_t record_size = static_cast<size_t>(state.range(1));
  bench::BenchDir dir;
  WalOptions options;
  options.dir = dir.path();
  options.sync_policy = policy;
  auto wal = *WalWriter::Open(std::move(options));
  Random rng(1);
  const std::string payload = rng.NextString(record_size);
  for (auto _ : state) {
    if (!wal->Append(1, payload).ok()) std::abort();
    if (policy == WalSyncPolicy::kOnCommit) {
      if (!wal->Sync().ok()) std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record_size));
  state.SetLabel(policy == WalSyncPolicy::kNever
                     ? "sync=never"
                     : (policy == WalSyncPolicy::kOnCommit
                            ? "sync=per_commit"
                            : "sync=every_append"));
}
BENCHMARK(BM_WalAppend)
    ->Args({static_cast<int>(WalSyncPolicy::kNever), 128})
    ->Args({static_cast<int>(WalSyncPolicy::kNever), 4096})
    ->Args({static_cast<int>(WalSyncPolicy::kOnCommit), 128})
    ->Args({static_cast<int>(WalSyncPolicy::kEveryAppend), 128})
    ->Unit(benchmark::kMicrosecond);

void BM_WalReadBack(benchmark::State& state) {
  bench::BenchDir dir;
  WalOptions options;
  options.dir = dir.path();
  options.sync_policy = WalSyncPolicy::kNever;
  auto wal = *WalWriter::Open(std::move(options));
  Random rng(1);
  const std::string payload = rng.NextString(128);
  constexpr int kRecords = 50000;
  for (int i = 0; i < kRecords; ++i) {
    if (!wal->Append(1, payload).ok()) std::abort();
  }
  for (auto _ : state) {
    WalCursor cursor(dir.path() + "", 0);
    WalEntry entry;
    int read = 0;
    while (*cursor.Next(&entry)) ++read;
    if (read != kRecords) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
}
BENCHMARK(BM_WalReadBack)->Unit(benchmark::kMillisecond);

SchemaPtr BenchSchema() {
  return Schema::Make({
      {"key", ValueType::kInt64, false},
      {"payload", ValueType::kString, true},
  });
}

/// Recovery time: replay `rows` inserts from the WAL on Open.
void BM_RecoveryReplay(benchmark::State& state) {
  const int64_t rows = state.range(0);
  bench::BenchDir dir;
  {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = *Database::Open(std::move(options));
    if (!db->CreateTable("t", BenchSchema()).ok()) std::abort();
    Random rng(7);
    for (int64_t i = 0; i < rows; ++i) {
      Record row(BenchSchema(),
                 {Value::Int64(i), Value::String(rng.NextString(64))});
      if (!db->Insert("t", std::move(row)).ok()) std::abort();
    }
  }
  for (auto _ : state) {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = Database::Open(std::move(options));
    if (!db.ok() || *(*db)->CountRows("t") != static_cast<size_t>(rows)) {
      std::abort();
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_RecoveryReplay)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Recovery after a checkpoint: snapshot load + short tail replay.
void BM_RecoveryFromCheckpoint(benchmark::State& state) {
  const int64_t rows = state.range(0);
  bench::BenchDir dir;
  {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = *Database::Open(std::move(options));
    if (!db->CreateTable("t", BenchSchema()).ok()) std::abort();
    Random rng(7);
    for (int64_t i = 0; i < rows; ++i) {
      Record row(BenchSchema(),
                 {Value::Int64(i), Value::String(rng.NextString(64))});
      if (!db->Insert("t", std::move(row)).ok()) std::abort();
    }
    if (!db->Checkpoint(db->wal_end_lsn()).ok()) std::abort();
  }
  for (auto _ : state) {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = Database::Open(std::move(options));
    if (!db.ok() || *(*db)->CountRows("t") != static_cast<size_t>(rows)) {
      std::abort();
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_RecoveryFromCheckpoint)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_BTreeInsert(benchmark::State& state) {
  BTreeIndex index(/*unique=*/false);
  Random rng(3);
  int64_t i = 0;
  for (auto _ : state) {
    if (!index.Insert(Value::Int64(static_cast<int64_t>(rng.Next() >> 16)),
                      static_cast<RowId>(++i))
             .ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert)->Unit(benchmark::kNanosecond);

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t keys = state.range(0);
  BTreeIndex index(false);
  for (int64_t i = 0; i < keys; ++i) {
    EDADB_IGNORE_STATUS(index.Insert(Value::Int64(i), static_cast<RowId>(i)),
                      "bench setup; a failed insert surfaces in the lookup measurements");
  }
  Random rng(4);
  for (auto _ : state) {
    auto rows = index.Lookup(Value::Int64(rng.UniformInt(0, keys - 1)));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["keys"] = static_cast<double>(keys);
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
