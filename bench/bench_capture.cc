// Experiment E1 — event capture paths (§2.2.a): triggers vs journal
// mining vs continuous-query diffing over the same insert workload.
//
// Measured: writer-side cost (inserts/sec with each capture mechanism
// attached) and capture cost per change on the consumer side. Expected
// shape: triggers tax the writer but deliver with zero staleness;
// journal mining leaves the writer almost untouched and drains cheaply;
// query-diff leaves the writer untouched but pays a full re-evaluation
// per poll, growing with table size.

#include <memory>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "core/sources.h"
#include "db/database.h"

namespace edadb {
namespace {

SchemaPtr ReadingsSchema() {
  return Schema::Make({
      {"sensor", ValueType::kString, false},
      {"temp", ValueType::kDouble, false},
  });
}

struct CaptureFixture {
  bench::BenchDir dir;
  std::unique_ptr<Database> db;
  uint64_t events = 0;

  CaptureFixture() {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db = *Database::Open(std::move(options));
    if (!db->CreateTable("readings", ReadingsSchema()).ok()) std::abort();
  }

  Record Row(Random* rng) {
    return Record(ReadingsSchema(),
                  {Value::String("s" + std::to_string(rng->Uniform(100))),
                   Value::Double(rng->Normal(20, 5))});
  }
};

/// Baseline: inserts with no capture attached.
void BM_InsertNoCapture(benchmark::State& state) {
  CaptureFixture fx;
  Random rng(1);
  for (auto _ : state) {
    if (!fx.db->Insert("readings", fx.Row(&rng)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertNoCapture)->Unit(benchmark::kMicrosecond);

/// Trigger capture: the event materializes inside the writer's commit.
void BM_InsertWithTriggerCapture(benchmark::State& state) {
  CaptureFixture fx;
  auto source = *TriggerEventSource::Create(
      fx.db.get(), [&](const Event&) { ++fx.events; }, "readings", "cap",
      "reading");
  Random rng(1);
  for (auto _ : state) {
    if (!fx.db->Insert("readings", fx.Row(&rng)).ok()) std::abort();
  }
  if (fx.events != static_cast<uint64_t>(state.iterations())) std::abort();
  state.SetItemsProcessed(state.iterations());
  state.counters["staleness_polls"] = 0;  // Synchronous.
}
BENCHMARK(BM_InsertWithTriggerCapture)->Unit(benchmark::kMicrosecond);

/// Journal capture: writer runs bare; a miner drains asynchronously.
/// Timed loop covers insert + amortized mining.
void BM_InsertWithJournalCapture(benchmark::State& state) {
  const int64_t batch = state.range(0);  // Poll every `batch` inserts.
  CaptureFixture fx;
  JournalEventSource source(
      fx.db.get(), [&](const Event&) { ++fx.events; }, "readings",
      "reading");
  Random rng(1);
  int64_t since_poll = 0;
  for (auto _ : state) {
    if (!fx.db->Insert("readings", fx.Row(&rng)).ok()) std::abort();
    if (++since_poll >= batch) {
      if (!source.Poll().ok()) std::abort();
      since_poll = 0;
    }
  }
  if (!source.Poll().ok()) std::abort();
  if (fx.events != static_cast<uint64_t>(state.iterations())) std::abort();
  state.SetItemsProcessed(state.iterations());
  state.counters["poll_batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_InsertWithJournalCapture)->Arg(1)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Query-diff capture: the watcher re-runs the query per poll, so the
/// per-poll cost grows with the table while trigger/journal do not.
void BM_InsertWithQueryDiffCapture(benchmark::State& state) {
  const int64_t batch = state.range(0);
  CaptureFixture fx;
  // Whole-row identity (empty key list): sensors repeat across hot
  // rows, and keying on a non-unique column makes the diff fail with
  // "duplicate key in result set" once two hot readings share one.
  QueryEventSource source(
      fx.db.get(), [&](const Event&) { ++fx.events; },
      QueryBuilder("readings").Where("temp > 30").Build(), {}, "hot");
  if (!source.Poll().ok()) std::abort();
  Random rng(1);
  int64_t since_poll = 0;
  for (auto _ : state) {
    if (!fx.db->Insert("readings", fx.Row(&rng)).ok()) std::abort();
    if (++since_poll >= batch) {
      if (!source.Poll().ok()) std::abort();
      since_poll = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["poll_batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_InsertWithQueryDiffCapture)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Pure drain rate of the journal miner over a prebuilt log.
void BM_JournalDrainRate(benchmark::State& state) {
  CaptureFixture fx;
  Random rng(1);
  constexpr int kChanges = 20000;
  for (int i = 0; i < kChanges; ++i) {
    if (!fx.db->Insert("readings", fx.Row(&rng)).ok()) std::abort();
  }
  for (auto _ : state) {
    uint64_t drained = 0;
    JournalEventSource source(
        fx.db.get(), [&](const Event&) { ++drained; }, "readings", "r");
    if (!source.Poll().ok()) std::abort();
    if (drained != kChanges) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * kChanges);
}
BENCHMARK(BM_JournalDrainRate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
