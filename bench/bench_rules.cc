// Experiment E4 — "the evaluation of internal data can significantly be
// optimized" / scalability to LARGE RULE SETS (§2.2.c.iii, §2.2.c.iv.2.a).
//
// Measures events matched per second against rule sets of 100..100,000
// conjunctive rules, for the naive matcher (evaluate every rule — the
// unoptimized baseline) and the predicate-indexed counting matcher.
// Expected shape: naive throughput decays ~1/rules; indexed throughput
// stays roughly flat, so the gap grows to orders of magnitude.

#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "rules/indexed_matcher.h"
#include "rules/matcher.h"

namespace edadb {
namespace {

constexpr int kNumAttrs = 8;
constexpr int64_t kCardinality = 1000;

std::unique_ptr<RuleMatcher> BuildMatcher(bool indexed, int64_t num_rules) {
  std::unique_ptr<RuleMatcher> matcher;
  if (indexed) {
    matcher = std::make_unique<IndexedMatcher>();
  } else {
    matcher = std::make_unique<NaiveMatcher>();
  }
  Random rng(4);
  for (int64_t i = 0; i < num_rules; ++i) {
    Rule rule;
    rule.id = "r" + std::to_string(i);
    rule.condition = *Predicate::Compile(
        bench::RandomRuleCondition(&rng, kNumAttrs, kCardinality));
    rule.action = "noop";
    if (!matcher->AddRule(std::move(rule)).ok()) std::abort();
  }
  return matcher;
}

void RunMatchBenchmark(benchmark::State& state, bool indexed) {
  const int64_t num_rules = state.range(0);
  auto matcher = BuildMatcher(indexed, num_rules);
  Random rng(99);
  // Pre-generate events so generation cost stays out of the loop.
  std::vector<bench::BenchEvent> events;
  for (int i = 0; i < 512; ++i) {
    events.push_back(bench::RandomRuleEvent(&rng, kNumAttrs, kCardinality));
  }
  size_t cursor = 0;
  uint64_t matches = 0;
  std::vector<const Rule*> out;
  for (auto _ : state) {
    out.clear();
    matcher->Match(events[cursor], &out);
    matches += out.size();
    cursor = (cursor + 1) % events.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rules"] = static_cast<double>(num_rules);
  state.counters["matches_per_event"] =
      static_cast<double>(matches) /
      static_cast<double>(state.iterations());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_NaiveMatch(benchmark::State& state) {
  RunMatchBenchmark(state, /*indexed=*/false);
}

void BM_IndexedMatch(benchmark::State& state) {
  RunMatchBenchmark(state, /*indexed=*/true);
}

// Naive is O(rules) per event; cap its largest size to keep the run
// short — the trend is unambiguous by 30k.
BENCHMARK(BM_NaiveMatch)->Arg(100)->Arg(1000)->Arg(10000)->Arg(30000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexedMatch)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(30000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

/// Build cost: compiling + indexing rules (matters for startup /
/// failover, part of the "large rule sets" operational story).
void BM_IndexedBuild(benchmark::State& state) {
  const int64_t num_rules = state.range(0);
  for (auto _ : state) {
    auto matcher = BuildMatcher(true, num_rules);
    benchmark::DoNotOptimize(matcher);
  }
  state.SetItemsProcessed(state.iterations() * num_rules);
}
BENCHMARK(BM_IndexedBuild)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
