// Experiment E7 — continuous queries as the base for CEP (§2.2.c.i.3):
// sliding-window aggregation throughput vs window/slide geometry
// (including the incremental-vs-recompute ablation from DESIGN.md §5)
// and NFA pattern-matching throughput vs pattern length and partition
// count.
//
// Experiment E11 — event-time consistency cost (DESIGN.md §15):
// speculative windows over the shared late/out-of-order workload
// generator, sweeping the lateness fraction to measure what disorder
// costs in retractions and re-emissions.

#include <memory>

#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "cq/join.h"
#include "cq/pattern.h"
#include "cq/window.h"
#include "testing/ooo_stream.h"

namespace edadb {
namespace {

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"price", ValueType::kDouble, false},
      {"delta", ValueType::kDouble, false},
  });
}

std::vector<Record> MakeTicks(size_t n, int symbols) {
  Random rng(5);
  SchemaPtr schema = TickSchema();
  std::vector<Record> ticks;
  ticks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double delta = rng.Normal(0, 0.5);
    ticks.emplace_back(
        schema,
        std::vector<Value>{
            Value::String("S" + std::to_string(rng.Uniform(symbols))),
            Value::Double(100 + rng.Normal(0, 5)), Value::Double(delta)});
  }
  return ticks;
}

/// Window geometry: slide == size (tumbling) down to size/16 (heavily
/// overlapped sliding), incremental accumulation.
void BM_WindowAggregation(benchmark::State& state) {
  const int64_t overlap = state.range(0);  // size / slide.
  const bool recompute = state.range(1) != 0;
  WindowAggregatorOptions options;
  options.window_size_micros = 1000 * overlap;  // Keep ~1k events/window.
  options.slide_micros = 1000;
  options.key_column = "symbol";
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kAvg, "price", "avg"},
                        {Aggregate::Func::kMin, "price", "lo"},
                        {Aggregate::Func::kMax, "price", "hi"}};
  options.recompute_at_close = recompute;
  const std::vector<Record> ticks = MakeTicks(4096, 8);
  uint64_t windows = 0;
  WindowedAggregator agg(options,
                         [&](const WindowResult&) { ++windows; });
  TimestampMicros ts = 0;
  size_t cursor = 0;
  for (auto _ : state) {
    ts += 10;
    if (!agg.Push(ticks[cursor], ts).ok()) std::abort();
    cursor = (cursor + 1) % ticks.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["windows_per_event"] = static_cast<double>(overlap);
  state.counters["emitted"] = static_cast<double>(windows);
  state.SetLabel(recompute ? "recompute" : "incremental");
}
BENCHMARK(BM_WindowAggregation)
    ->Args({1, 0})->Args({4, 0})->Args({16, 0})
    ->Args({1, 1})->Args({4, 1})->Args({16, 1})
    ->Unit(benchmark::kMicrosecond);

PatternStep Step(const std::string& name, const std::string& condition,
                 bool one_or_more = false) {
  PatternStep step;
  step.name = name;
  step.condition = *Predicate::Compile(condition);
  step.one_or_more = one_or_more;
  return step;
}

/// Pattern length sweep: SEQ of k alternating conditions WITHIN 1s,
/// partitioned by symbol.
void BM_PatternMatchLength(benchmark::State& state) {
  const int64_t length = state.range(0);
  PatternSpec spec;
  spec.name = "seq";
  for (int64_t i = 0; i < length; ++i) {
    spec.steps.push_back(Step(
        "s" + std::to_string(i),
        i % 2 == 0 ? "delta > 0.2" : "delta < -0.2"));
  }
  spec.within_micros = kMicrosPerSecond;
  spec.partition_by = "symbol";
  uint64_t matches = 0;
  auto matcher = *PatternMatcher::Create(
      spec, [&](const PatternMatch&) { ++matches; });
  const std::vector<Record> ticks = MakeTicks(4096, 8);
  TimestampMicros ts = 0;
  size_t cursor = 0;
  for (auto _ : state) {
    ts += 100;
    if (!matcher->Push(ticks[cursor], ts).ok()) std::abort();
    cursor = (cursor + 1) % ticks.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pattern_length"] = static_cast<double>(length);
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["active_runs"] =
      static_cast<double>(matcher->active_runs());
}
BENCHMARK(BM_PatternMatchLength)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Partition sweep: same pattern over 1..1000 concurrent partitions.
void BM_PatternMatchPartitions(benchmark::State& state) {
  const int64_t partitions = state.range(0);
  PatternSpec spec;
  spec.name = "dip";
  spec.steps = {Step("drops", "delta < 0", /*one_or_more=*/true),
                Step("rebound", "delta > 0.8")};
  spec.within_micros = kMicrosPerSecond;
  spec.partition_by = "symbol";
  spec.max_active_runs = 64;
  uint64_t matches = 0;
  auto matcher = *PatternMatcher::Create(
      spec, [&](const PatternMatch&) { ++matches; });
  const std::vector<Record> ticks =
      MakeTicks(8192, static_cast<int>(partitions));
  TimestampMicros ts = 0;
  size_t cursor = 0;
  for (auto _ : state) {
    ts += 100;
    if (!matcher->Push(ticks[cursor], ts).ok()) std::abort();
    cursor = (cursor + 1) % ticks.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["partitions"] = static_cast<double>(partitions);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_PatternMatchPartitions)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

/// SlidingWindowStats micro-cost: the O(1) incremental primitive.
void BM_SlidingStatsAdd(benchmark::State& state) {
  SlidingWindowStats stats(10000);
  Random rng(6);
  TimestampMicros ts = 0;
  for (auto _ : state) {
    ts += 10;
    stats.Add(ts, rng.Normal(50, 10));
    benchmark::DoNotOptimize(stats.mean());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingStatsAdd)->Unit(benchmark::kNanosecond);

/// Windowed stream-stream join throughput vs key cardinality (the
/// buffer-per-key fanout determines pairing work).
void BM_IntervalJoin(benchmark::State& state) {
  const int64_t keys = state.range(0);
  IntervalJoin join(
      {.left_key = "symbol", .right_key = "symbol",
       .window_micros = 10 * kMicrosPerMilli},
      [](const Record&, const Record&, TimestampMicros) {});
  const std::vector<Record> left = MakeTicks(4096, static_cast<int>(keys));
  const std::vector<Record> right = MakeTicks(4096, static_cast<int>(keys));
  TimestampMicros ts = 0;
  size_t cursor = 0;
  for (auto _ : state) {
    ts += 5;
    if (!join.PushLeft(left[cursor], ts).ok()) std::abort();
    if (!join.PushRight(right[cursor], ts + 1).ok()) std::abort();
    cursor = (cursor + 1) % left.size();
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["keys"] = static_cast<double>(keys);
  state.counters["pairs"] = static_cast<double>(join.emitted());
}
BENCHMARK(BM_IntervalJoin)->Arg(4)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// E11: retraction cost vs lateness fraction. The arrival-ordered OOO
/// stream feeds kSpeculative tumbling windows whose lateness allowance
/// covers the max delay (nothing drops); every straggler that lands in
/// an already-published window forces a kRetract + kInsert pair, so
/// the retraction counters price the disorder directly.
void BM_RetractionCostVsLateness(benchmark::State& state) {
  const int64_t lateness_pct = state.range(0);
  testing::OooStreamOptions stream_options;
  stream_options.num_events = 8192;
  stream_options.step_micros = 100;
  stream_options.lateness_fraction =
      static_cast<double>(lateness_pct) / 100.0;
  stream_options.max_delay_micros = 5000;
  Random rng(11);
  const std::vector<testing::OooEvent> stream =
      GenerateOooStream(stream_options, &rng);
  // Event time spanned by one pass; later passes shift by this much so
  // watermarks keep advancing when the benchmark loops the stream.
  const TimestampMicros span =
      stream_options.num_events * stream_options.step_micros +
      stream_options.max_delay_micros;

  WindowAggregatorOptions options;
  options.window_size_micros = 1000;  // ~10 events per window.
  options.key_column = "symbol";
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kAvg, "price", "avg"}};
  options.consistency = ConsistencyLevel::kSpeculative;
  options.allowed_lateness_micros = stream_options.max_delay_micros;
  const std::vector<Record> ticks = MakeTicks(1024, 4);
  uint64_t emitted = 0;
  WindowedAggregator agg(options, [&](const WindowResult&) { ++emitted; });

  size_t cursor = 0;
  TimestampMicros epoch = 0;
  for (auto _ : state) {
    const testing::OooEvent& event = stream[cursor];
    if (!agg.Push(ticks[event.seq % ticks.size()], epoch + event.ts).ok()) {
      std::abort();
    }
    if (++cursor == stream.size()) {
      cursor = 0;
      epoch += span;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["lateness"] = stream_options.lateness_fraction;
  state.counters["retractions"] =
      static_cast<double>(agg.retractions_emitted());
  state.counters["speculative"] =
      static_cast<double>(agg.speculative_emitted());
  state.counters["late_dropped"] = static_cast<double>(agg.late_dropped());
  state.counters["retractions_per_1k_events"] =
      state.iterations() > 0
          ? 1000.0 * static_cast<double>(agg.retractions_emitted()) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_RetractionCostVsLateness)->Arg(0)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
