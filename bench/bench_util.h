#ifndef EDADB_BENCH_BENCH_UTIL_H_
#define EDADB_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "value/record.h"

namespace edadb {
namespace bench {

/// Scratch directory removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "edadb_bench_XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    path_ = made != nullptr ? tmpl : "/tmp/edadb_bench_fallback";
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Simple attribute-map event for matcher benchmarks.
class BenchEvent : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

/// The standard event population for rule benchmarks: `num_attrs`
/// integer attributes in [0, cardinality) plus a region string.
inline BenchEvent RandomRuleEvent(Random* rng, int num_attrs,
                                  int64_t cardinality) {
  BenchEvent event;
  for (int a = 0; a < num_attrs; ++a) {
    event.values["attr" + std::to_string(a)] =
        Value::Int64(rng->UniformInt(0, cardinality - 1));
  }
  static const char* const kRegions[] = {"north", "south", "east", "west"};
  event.values["region"] = Value::String(kRegions[rng->Uniform(4)]);
  return event;
}

/// A selective conjunctive rule condition over the population above:
/// two equality conjuncts plus one range, so most rules don't match
/// most events (the realistic pub/sub regime).
inline std::string RandomRuleCondition(Random* rng, int num_attrs,
                                       int64_t cardinality) {
  const int a1 = static_cast<int>(rng->Uniform(num_attrs));
  int a2 = static_cast<int>(rng->Uniform(num_attrs));
  if (a2 == a1) a2 = (a2 + 1) % num_attrs;
  static const char* const kRegions[] = {"north", "south", "east", "west"};
  return StringPrintf(
      "attr%d = %lld AND region = '%s' AND attr%d BETWEEN %lld AND %lld",
      a1, static_cast<long long>(rng->UniformInt(0, cardinality - 1)),
      kRegions[rng->Uniform(4)], a2,
      static_cast<long long>(rng->UniformInt(0, cardinality / 2)),
      static_cast<long long>(
          rng->UniformInt(cardinality / 2, cardinality - 1)));
}

// ---------------------------------------------------------------------
// --json output mode.
//
// Every bench binary routes through BenchMain() below, which accepts a
// `--json[=path]` flag (default path "bench.json") in addition to the
// standard --benchmark_* flags. With --json, per-benchmark results are
// ALSO written as a JSON array — one object per benchmark run with
// name, iterations, ops/sec and p50/p99 latency — so scripts/bench.sh
// and the CI bench-smoke stage can consume results without scraping
// console output.

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Console reporter that additionally collects every iteration run and
/// writes the JSON array to `path` in Finalize(). Latency fields come
/// from user counters "p50_us"/"p99_us" when the benchmark records
/// them (see BM_PipelineLatency); otherwise both report the mean
/// per-iteration wall time, which is the right scalar for simple
/// throughput loops.
class JsonFileReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double per_iter_us = run.real_accumulated_time / iters * 1e6;
      auto counter_or = [&run](const char* key, double fallback) {
        auto it = run.counters.find(key);
        if (it == run.counters.end()) return fallback;
        return static_cast<double>(it->second);
      };
      entry.ops_per_sec = counter_or(
          "items_per_second", per_iter_us > 0 ? 1e6 / per_iter_us : 0.0);
      entry.p50_us = counter_or("p50_us", per_iter_us);
      entry.p99_us = counter_or("p99_us", per_iter_us);
      // Preserve every user counter verbatim (sorted map iteration →
      // stable output) so benchmarks can export extra dimensions —
      // e.g. bench_pubsub's subscribers/miss_rate — without schema
      // changes here.
      for (const auto& [name, counter] : run.counters) {
        entry.counters.emplace_back(name, static_cast<double>(counter));
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(report);
  }

  void Finalize() override {
    std::ofstream out(path_);
    if (out) {
      out << "[\n";
      for (size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        out << "  {\"name\": \"" << JsonEscape(e.name) << "\""
            << ", \"iterations\": " << e.iterations
            << ", \"ops_per_sec\": " << Num(e.ops_per_sec)
            << ", \"p50_us\": " << Num(e.p50_us)
            << ", \"p99_us\": " << Num(e.p99_us);
        if (!e.counters.empty()) {
          out << ", \"counters\": {";
          for (size_t c = 0; c < e.counters.size(); ++c) {
            out << "\"" << JsonEscape(e.counters[c].first)
                << "\": " << Num(e.counters[c].second)
                << (c + 1 < e.counters.size() ? ", " : "");
          }
          out << "}";
        }
        out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
      }
      out << "]\n";
    }
    ConsoleReporter::Finalize();
  }

 private:
  struct Entry {
    std::string name;
    int64_t iterations = 0;
    double ops_per_sec = 0;
    double p50_us = 0;
    double p99_us = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  /// JSON has no NaN/Infinity; clamp non-finite values to 0.
  static double Num(double v) { return std::isfinite(v) ? v : 0.0; }

  std::string path_;
  std::vector<Entry> entries_;
};

/// Shared main() for every bench binary: strips `--json[=path]`, then
/// hands the rest to google/benchmark.
inline int BenchMain(int argc, char** argv) {
  std::string json_path;
  bool json = false;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path.assign(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json) {
    if (json_path.empty()) json_path = "bench.json";
    JsonFileReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    // Drop the process metrics snapshot next to the timings: what the
    // system did (WAL syncs, group-commit sizes, queue latencies) to
    // produce them. <path>.metrics.json so bench.sh can pair the files.
    std::ofstream metrics_out(json_path + ".metrics.json");
    if (metrics_out) {
      metrics_out << metrics::Registry::Default()->DumpJson() << "\n";
    }
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace edadb

#endif  // EDADB_BENCH_BENCH_UTIL_H_
