#ifndef EDADB_BENCH_BENCH_UTIL_H_
#define EDADB_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "value/record.h"

namespace edadb {
namespace bench {

/// Scratch directory removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "edadb_bench_XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    path_ = made != nullptr ? tmpl : "/tmp/edadb_bench_fallback";
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Simple attribute-map event for matcher benchmarks.
class BenchEvent : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

/// The standard event population for rule benchmarks: `num_attrs`
/// integer attributes in [0, cardinality) plus a region string.
inline BenchEvent RandomRuleEvent(Random* rng, int num_attrs,
                                  int64_t cardinality) {
  BenchEvent event;
  for (int a = 0; a < num_attrs; ++a) {
    event.values["attr" + std::to_string(a)] =
        Value::Int64(rng->UniformInt(0, cardinality - 1));
  }
  static const char* const kRegions[] = {"north", "south", "east", "west"};
  event.values["region"] = Value::String(kRegions[rng->Uniform(4)]);
  return event;
}

/// A selective conjunctive rule condition over the population above:
/// two equality conjuncts plus one range, so most rules don't match
/// most events (the realistic pub/sub regime).
inline std::string RandomRuleCondition(Random* rng, int num_attrs,
                                       int64_t cardinality) {
  const int a1 = static_cast<int>(rng->Uniform(num_attrs));
  int a2 = static_cast<int>(rng->Uniform(num_attrs));
  if (a2 == a1) a2 = (a2 + 1) % num_attrs;
  static const char* const kRegions[] = {"north", "south", "east", "west"};
  return StringPrintf(
      "attr%d = %lld AND region = '%s' AND attr%d BETWEEN %lld AND %lld",
      a1, static_cast<long long>(rng->UniformInt(0, cardinality - 1)),
      kRegions[rng->Uniform(4)], a2,
      static_cast<long long>(rng->UniformInt(0, cardinality / 2)),
      static_cast<long long>(
          rng->UniformInt(cardinality / 2, cardinality - 1)));
}

}  // namespace bench
}  // namespace edadb

#endif  // EDADB_BENCH_BENCH_UTIL_H_
