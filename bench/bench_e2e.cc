// Experiment E10 — end-to-end message consumption & distribution
// (§2.2.d): the full pipeline ingest → rules → staging queue →
// propagation → external service, with per-stage and end-to-end
// latency percentiles printed as a table, plus sustained pipeline
// throughput as a benchmark.

#include <cstdio>
#include <memory>
#include <vector>

#include "analytics/stats.h"
#include "benchmark/benchmark.h"
#include "bench_util.h"
#include "core/processor.h"
#include "mq/propagation.h"

namespace edadb {
namespace {

struct Pipeline {
  bench::BenchDir dir;
  std::unique_ptr<EventProcessor> processor;
  std::unique_ptr<SimulatedExternalService> gateway;

  /// shards = 0 keeps the EventProcessor default (one delivery-core
  /// shard per hardware thread); an explicit count pins the layout for
  /// the sharded sweep below.
  explicit Pipeline(int shards = 0) {
    EventProcessorOptions options;
    options.data_dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.shards = shards;
    processor = *EventProcessor::Open(std::move(options));
    if (!processor->queues()->CreateQueue("alerts").ok()) std::abort();
    if (!processor->queues()->CreateQueue("outbound").ok()) std::abort();
    if (!processor->rules()
             ->AddRule("critical", "severity >= 8", "queue:alerts")
             .ok()) {
      std::abort();
    }
    // alerts -> outbound -> external gateway.
    PropagationRule hop;
    hop.name = "stage";
    hop.source_queue = "alerts";
    hop.destination_queue = "outbound";
    if (!processor->propagator()->AddRule(std::move(hop)).ok()) std::abort();
    gateway = std::make_unique<SimulatedExternalService>(
        "gateway", SimulatedExternalService::Options{},
        processor->clock());
    PropagationRule out;
    out.name = "deliver";
    out.source_queue = "outbound";
    out.external = gateway.get();
    if (!processor->propagator()->AddRule(std::move(out)).ok()) std::abort();
  }

  Event MakeEvent(Random* rng, bool critical) {
    Event event;
    event.type = "reading";
    event.source = "s" + std::to_string(rng->Uniform(100));
    event.Set("severity",
              Value::Int64(critical ? 9 : rng->UniformInt(1, 5)));
    event.Set("payload_sz", Value::Int64(128));
    return event;
  }
};

void PrintLatencyTable() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  Pipeline pipeline;
  Random rng(1);
  // Latency of one critical event through every stage, sampled 2000
  // times (steady clock: latency is a duration, not an event time).
  P2Quantile p50(0.5), p99(0.99);
  StreamingStats stats;
  for (int i = 0; i < 2000; ++i) {
    const SteadyMicros start = SystemClock::Default()->SteadyNow();
    if (!pipeline.processor->Ingest(pipeline.MakeEvent(&rng, true)).ok()) {
      std::abort();
    }
    if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
    if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
    const double micros = static_cast<double>(
        SystemClock::Default()->SteadyNow() - start);
    p50.Add(micros);
    p99.Add(micros);
    stats.Add(micros);
  }
  if (pipeline.gateway->delivered_count() != 2000) std::abort();
  std::printf(
      "\n=== E10: end-to-end latency, ingest -> rules -> queue -> "
      "propagate x2 -> external (2000 critical events) ===\n");
  std::printf("%10s %10s %10s %10s\n", "mean_us", "p50_us", "p99_us",
              "max_us");
  std::printf("%10.1f %10.1f %10.1f %10.1f\n\n", stats.mean(), p50.value(),
              p99.value(), stats.max());
}

/// Sustained throughput with a realistic critical fraction; propagation
/// pumped in batches as a scheduler would.
void BM_PipelineThroughput(benchmark::State& state) {
  PrintLatencyTable();
  const int64_t critical_percent = state.range(0);
  Pipeline pipeline;
  Random rng(2);
  int64_t since_pump = 0;
  for (auto _ : state) {
    const bool critical =
        rng.Uniform(100) < static_cast<uint64_t>(critical_percent);
    if (!pipeline.processor->Ingest(pipeline.MakeEvent(&rng, critical))
             .ok()) {
      std::abort();
    }
    if (++since_pump >= 256) {
      if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
      if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
      since_pump = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["critical_pct"] = static_cast<double>(critical_percent);
  state.counters["delivered"] =
      static_cast<double>(pipeline.gateway->delivered_count());
}
BENCHMARK(BM_PipelineThroughput)->Arg(1)->Arg(10)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

/// Ingest-only rate (rules evaluated, nothing matches): the pipeline's
/// fixed per-event tax.
void BM_IngestNoMatch(benchmark::State& state) {
  Pipeline pipeline;
  Random rng(3);
  for (auto _ : state) {
    if (!pipeline.processor->Ingest(pipeline.MakeEvent(&rng, false)).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IngestNoMatch)->Unit(benchmark::kMicrosecond);

/// Batch ingest sweep: IngestBatch(N) amortizes the bus subscriber
/// snapshot and the matcher lock over N events (routing transactions
/// stay per-event). Compare against BM_IngestNoMatch for the N=1 tax.
void BM_IngestBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Pipeline pipeline;
  Random rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Event> events;
    events.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      events.push_back(pipeline.MakeEvent(&rng, false));
    }
    state.ResumeTiming();
    if (!pipeline.processor->IngestBatch(std::move(events)).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_IngestBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

/// The full pipeline across delivery-core shard counts: queue routing,
/// rule-matched staging, and both propagation hops now run against a
/// sharded delivery core (the alerts -> outbound hop crosses shards
/// whenever the two queues hash apart, exercising the handoff path
/// under load). counters["shards"] makes the datapoint filterable in
/// the merged bench JSON.
void BM_PipelineThroughputSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  Pipeline pipeline(shards);
  Random rng(6);
  int64_t since_pump = 0;
  for (auto _ : state) {
    const bool critical = rng.Uniform(100) < 10;
    if (!pipeline.processor->Ingest(pipeline.MakeEvent(&rng, critical))
             .ok()) {
      std::abort();
    }
    if (++since_pump >= 256) {
      if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
      if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
      since_pump = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["delivered"] =
      static_cast<double>(pipeline.gateway->delivered_count());
}
BENCHMARK(BM_PipelineThroughputSharded)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

/// Full-pipeline latency of one critical event, exported as p50_us /
/// p99_us counters so the --json reporter carries real percentiles
/// (the latency table above prints the same numbers for humans).
void BM_PipelineLatency(benchmark::State& state) {
  Pipeline pipeline;
  Random rng(5);
  P2Quantile p50(0.5), p99(0.99);
  for (auto _ : state) {
    const SteadyMicros start = SystemClock::Default()->SteadyNow();
    if (!pipeline.processor->Ingest(pipeline.MakeEvent(&rng, true)).ok()) {
      std::abort();
    }
    if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
    if (!pipeline.processor->propagator()->RunOnce().ok()) std::abort();
    const double micros = static_cast<double>(
        SystemClock::Default()->SteadyNow() - start);
    p50.Add(micros);
    p99.Add(micros);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["p50_us"] = p50.value();
  state.counters["p99_us"] = p99.value();
}
BENCHMARK(BM_PipelineLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace edadb

int main(int argc, char** argv) { return edadb::bench::BenchMain(argc, argv); }
