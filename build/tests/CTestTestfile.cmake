# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(value_test "/root/repo/build/tests/value_test")
set_tests_properties(value_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/expr_test")
set_tests_properties(expr_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;23;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;30;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(db_test "/root/repo/build/tests/db_test")
set_tests_properties(db_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;36;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(journal_test "/root/repo/build/tests/journal_test")
set_tests_properties(journal_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;47;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mq_test "/root/repo/build/tests/mq_test")
set_tests_properties(mq_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rules_test "/root/repo/build/tests/rules_test")
set_tests_properties(rules_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;57;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pubsub_test "/root/repo/build/tests/pubsub_test")
set_tests_properties(pubsub_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cq_test "/root/repo/build/tests/cq_test")
set_tests_properties(cq_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;67;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analytics_test "/root/repo/build/tests/analytics_test")
set_tests_properties(analytics_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;75;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;79;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;84;edadb_test;/root/repo/tests/CMakeLists.txt;0;")
