file(REMOVE_RECURSE
  "CMakeFiles/pubsub_test.dir/pubsub/broker_param_test.cc.o"
  "CMakeFiles/pubsub_test.dir/pubsub/broker_param_test.cc.o.d"
  "CMakeFiles/pubsub_test.dir/pubsub/broker_test.cc.o"
  "CMakeFiles/pubsub_test.dir/pubsub/broker_test.cc.o.d"
  "pubsub_test"
  "pubsub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
