# Empty compiler generated dependencies file for pubsub_test.
# This may be replaced when dependencies are built.
