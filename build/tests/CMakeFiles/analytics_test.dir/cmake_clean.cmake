file(REMOVE_RECURSE
  "CMakeFiles/analytics_test.dir/analytics/analytics_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/analytics_test.cc.o.d"
  "CMakeFiles/analytics_test.dir/analytics/seasonal_test.cc.o"
  "CMakeFiles/analytics_test.dir/analytics/seasonal_test.cc.o.d"
  "analytics_test"
  "analytics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
