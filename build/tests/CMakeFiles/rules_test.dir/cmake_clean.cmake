file(REMOVE_RECURSE
  "CMakeFiles/rules_test.dir/rules/interval_index_test.cc.o"
  "CMakeFiles/rules_test.dir/rules/interval_index_test.cc.o.d"
  "CMakeFiles/rules_test.dir/rules/matcher_equivalence_test.cc.o"
  "CMakeFiles/rules_test.dir/rules/matcher_equivalence_test.cc.o.d"
  "CMakeFiles/rules_test.dir/rules/matcher_test.cc.o"
  "CMakeFiles/rules_test.dir/rules/matcher_test.cc.o.d"
  "CMakeFiles/rules_test.dir/rules/rules_engine_test.cc.o"
  "CMakeFiles/rules_test.dir/rules/rules_engine_test.cc.o.d"
  "rules_test"
  "rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
