file(REMOVE_RECURSE
  "CMakeFiles/db_test.dir/db/database_test.cc.o"
  "CMakeFiles/db_test.dir/db/database_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/durability_param_test.cc.o"
  "CMakeFiles/db_test.dir/db/durability_param_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/explain_test.cc.o"
  "CMakeFiles/db_test.dir/db/explain_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/nullable_index_test.cc.o"
  "CMakeFiles/db_test.dir/db/nullable_index_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/planner_property_test.cc.o"
  "CMakeFiles/db_test.dir/db/planner_property_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/resultset_diff_test.cc.o"
  "CMakeFiles/db_test.dir/db/resultset_diff_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/sql_test.cc.o"
  "CMakeFiles/db_test.dir/db/sql_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/transaction_recovery_test.cc.o"
  "CMakeFiles/db_test.dir/db/transaction_recovery_test.cc.o.d"
  "CMakeFiles/db_test.dir/db/trigger_test.cc.o"
  "CMakeFiles/db_test.dir/db/trigger_test.cc.o.d"
  "db_test"
  "db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
