# Empty compiler generated dependencies file for mq_test.
# This may be replaced when dependencies are built.
