file(REMOVE_RECURSE
  "CMakeFiles/mq_test.dir/mq/dispatcher_test.cc.o"
  "CMakeFiles/mq_test.dir/mq/dispatcher_test.cc.o.d"
  "CMakeFiles/mq_test.dir/mq/propagation_test.cc.o"
  "CMakeFiles/mq_test.dir/mq/propagation_test.cc.o.d"
  "CMakeFiles/mq_test.dir/mq/queue_param_test.cc.o"
  "CMakeFiles/mq_test.dir/mq/queue_param_test.cc.o.d"
  "CMakeFiles/mq_test.dir/mq/queue_reattach_test.cc.o"
  "CMakeFiles/mq_test.dir/mq/queue_reattach_test.cc.o.d"
  "CMakeFiles/mq_test.dir/mq/queue_test.cc.o"
  "CMakeFiles/mq_test.dir/mq/queue_test.cc.o.d"
  "mq_test"
  "mq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
