# Empty dependencies file for cq_test.
# This may be replaced when dependencies are built.
