file(REMOVE_RECURSE
  "CMakeFiles/cq_test.dir/cq/continuous_query_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/continuous_query_test.cc.o.d"
  "CMakeFiles/cq_test.dir/cq/join_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/join_test.cc.o.d"
  "CMakeFiles/cq_test.dir/cq/pattern_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/pattern_test.cc.o.d"
  "CMakeFiles/cq_test.dir/cq/session_window_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/session_window_test.cc.o.d"
  "CMakeFiles/cq_test.dir/cq/window_param_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/window_param_test.cc.o.d"
  "CMakeFiles/cq_test.dir/cq/window_test.cc.o"
  "CMakeFiles/cq_test.dir/cq/window_test.cc.o.d"
  "cq_test"
  "cq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
