file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/clock_test.cc.o"
  "CMakeFiles/common_test.dir/common/clock_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/coding_test.cc.o"
  "CMakeFiles/common_test.dir/common/coding_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/crc32_test.cc.o"
  "CMakeFiles/common_test.dir/common/crc32_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/random_test.cc.o"
  "CMakeFiles/common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/status_test.cc.o"
  "CMakeFiles/common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/common_test.dir/common/string_util_test.cc.o.d"
  "common_test"
  "common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
