
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/clock_test.cc" "tests/CMakeFiles/common_test.dir/common/clock_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/clock_test.cc.o.d"
  "/root/repo/tests/common/coding_test.cc" "tests/CMakeFiles/common_test.dir/common/coding_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/coding_test.cc.o.d"
  "/root/repo/tests/common/crc32_test.cc" "tests/CMakeFiles/common_test.dir/common/crc32_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/crc32_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/common_test.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "tests/CMakeFiles/common_test.dir/common/string_util_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/string_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edadb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/edadb_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/edadb_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/edadb_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/edadb_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/mq/CMakeFiles/edadb_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/edadb_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/edadb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/edadb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/edadb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/edadb_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
