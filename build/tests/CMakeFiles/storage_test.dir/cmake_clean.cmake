file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/btree_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/btree_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/heap_log_record_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/heap_log_record_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/wal_property_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/wal_property_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/wal_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/wal_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
