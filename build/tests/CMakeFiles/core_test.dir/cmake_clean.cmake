file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/audit_test.cc.o"
  "CMakeFiles/core_test.dir/core/audit_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/core_test.cc.o"
  "CMakeFiles/core_test.dir/core/core_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/processor_test.cc.o"
  "CMakeFiles/core_test.dir/core/processor_test.cc.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
