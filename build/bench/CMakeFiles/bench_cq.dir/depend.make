# Empty dependencies file for bench_cq.
# This may be replaced when dependencies are built.
