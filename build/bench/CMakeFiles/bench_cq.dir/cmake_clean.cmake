file(REMOVE_RECURSE
  "CMakeFiles/bench_cq.dir/bench_cq.cc.o"
  "CMakeFiles/bench_cq.dir/bench_cq.cc.o.d"
  "bench_cq"
  "bench_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
