# Empty compiler generated dependencies file for bench_capture.
# This may be replaced when dependencies are built.
