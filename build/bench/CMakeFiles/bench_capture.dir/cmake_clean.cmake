file(REMOVE_RECURSE
  "CMakeFiles/bench_capture.dir/bench_capture.cc.o"
  "CMakeFiles/bench_capture.dir/bench_capture.cc.o.d"
  "bench_capture"
  "bench_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
