# Empty dependencies file for bench_e2e.
# This may be replaced when dependencies are built.
