file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e.dir/bench_e2e.cc.o"
  "CMakeFiles/bench_e2e.dir/bench_e2e.cc.o.d"
  "bench_e2e"
  "bench_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
