# Empty dependencies file for bench_queue.
# This may be replaced when dependencies are built.
