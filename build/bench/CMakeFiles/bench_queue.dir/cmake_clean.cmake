file(REMOVE_RECURSE
  "CMakeFiles/bench_queue.dir/bench_queue.cc.o"
  "CMakeFiles/bench_queue.dir/bench_queue.cc.o.d"
  "bench_queue"
  "bench_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
