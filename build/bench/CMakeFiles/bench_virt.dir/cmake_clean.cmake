file(REMOVE_RECURSE
  "CMakeFiles/bench_virt.dir/bench_virt.cc.o"
  "CMakeFiles/bench_virt.dir/bench_virt.cc.o.d"
  "bench_virt"
  "bench_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
