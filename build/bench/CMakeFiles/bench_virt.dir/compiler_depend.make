# Empty compiler generated dependencies file for bench_virt.
# This may be replaced when dependencies are built.
