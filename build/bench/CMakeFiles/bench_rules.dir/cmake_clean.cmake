file(REMOVE_RECURSE
  "CMakeFiles/bench_rules.dir/bench_rules.cc.o"
  "CMakeFiles/bench_rules.dir/bench_rules.cc.o.d"
  "bench_rules"
  "bench_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
