# Empty dependencies file for bench_rules.
# This may be replaced when dependencies are built.
