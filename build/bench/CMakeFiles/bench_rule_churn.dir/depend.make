# Empty dependencies file for bench_rule_churn.
# This may be replaced when dependencies are built.
