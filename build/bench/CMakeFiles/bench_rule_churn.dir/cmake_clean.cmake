file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_churn.dir/bench_rule_churn.cc.o"
  "CMakeFiles/bench_rule_churn.dir/bench_rule_churn.cc.o.d"
  "bench_rule_churn"
  "bench_rule_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
