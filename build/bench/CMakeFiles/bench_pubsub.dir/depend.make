# Empty dependencies file for bench_pubsub.
# This may be replaced when dependencies are built.
