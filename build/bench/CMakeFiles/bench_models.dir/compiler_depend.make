# Empty compiler generated dependencies file for bench_models.
# This may be replaced when dependencies are built.
