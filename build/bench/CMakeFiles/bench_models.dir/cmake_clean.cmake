file(REMOVE_RECURSE
  "CMakeFiles/bench_models.dir/bench_models.cc.o"
  "CMakeFiles/bench_models.dir/bench_models.cc.o.d"
  "bench_models"
  "bench_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
