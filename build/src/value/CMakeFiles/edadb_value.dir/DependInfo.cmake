
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/value/record.cc" "src/value/CMakeFiles/edadb_value.dir/record.cc.o" "gcc" "src/value/CMakeFiles/edadb_value.dir/record.cc.o.d"
  "/root/repo/src/value/row_codec.cc" "src/value/CMakeFiles/edadb_value.dir/row_codec.cc.o" "gcc" "src/value/CMakeFiles/edadb_value.dir/row_codec.cc.o.d"
  "/root/repo/src/value/schema.cc" "src/value/CMakeFiles/edadb_value.dir/schema.cc.o" "gcc" "src/value/CMakeFiles/edadb_value.dir/schema.cc.o.d"
  "/root/repo/src/value/value.cc" "src/value/CMakeFiles/edadb_value.dir/value.cc.o" "gcc" "src/value/CMakeFiles/edadb_value.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
