file(REMOVE_RECURSE
  "CMakeFiles/edadb_value.dir/record.cc.o"
  "CMakeFiles/edadb_value.dir/record.cc.o.d"
  "CMakeFiles/edadb_value.dir/row_codec.cc.o"
  "CMakeFiles/edadb_value.dir/row_codec.cc.o.d"
  "CMakeFiles/edadb_value.dir/schema.cc.o"
  "CMakeFiles/edadb_value.dir/schema.cc.o.d"
  "CMakeFiles/edadb_value.dir/value.cc.o"
  "CMakeFiles/edadb_value.dir/value.cc.o.d"
  "libedadb_value.a"
  "libedadb_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
