file(REMOVE_RECURSE
  "libedadb_value.a"
)
