# Empty dependencies file for edadb_value.
# This may be replaced when dependencies are built.
