file(REMOVE_RECURSE
  "libedadb_storage.a"
)
