
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/edadb_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/edadb_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/storage/CMakeFiles/edadb_storage.dir/file.cc.o" "gcc" "src/storage/CMakeFiles/edadb_storage.dir/file.cc.o.d"
  "/root/repo/src/storage/heap.cc" "src/storage/CMakeFiles/edadb_storage.dir/heap.cc.o" "gcc" "src/storage/CMakeFiles/edadb_storage.dir/heap.cc.o.d"
  "/root/repo/src/storage/log_record.cc" "src/storage/CMakeFiles/edadb_storage.dir/log_record.cc.o" "gcc" "src/storage/CMakeFiles/edadb_storage.dir/log_record.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/edadb_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/edadb_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/edadb_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
