# Empty dependencies file for edadb_storage.
# This may be replaced when dependencies are built.
