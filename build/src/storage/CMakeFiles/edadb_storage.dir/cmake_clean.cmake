file(REMOVE_RECURSE
  "CMakeFiles/edadb_storage.dir/btree.cc.o"
  "CMakeFiles/edadb_storage.dir/btree.cc.o.d"
  "CMakeFiles/edadb_storage.dir/file.cc.o"
  "CMakeFiles/edadb_storage.dir/file.cc.o.d"
  "CMakeFiles/edadb_storage.dir/heap.cc.o"
  "CMakeFiles/edadb_storage.dir/heap.cc.o.d"
  "CMakeFiles/edadb_storage.dir/log_record.cc.o"
  "CMakeFiles/edadb_storage.dir/log_record.cc.o.d"
  "CMakeFiles/edadb_storage.dir/wal.cc.o"
  "CMakeFiles/edadb_storage.dir/wal.cc.o.d"
  "libedadb_storage.a"
  "libedadb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
