
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/detector.cc" "src/analytics/CMakeFiles/edadb_analytics.dir/detector.cc.o" "gcc" "src/analytics/CMakeFiles/edadb_analytics.dir/detector.cc.o.d"
  "/root/repo/src/analytics/forecaster.cc" "src/analytics/CMakeFiles/edadb_analytics.dir/forecaster.cc.o" "gcc" "src/analytics/CMakeFiles/edadb_analytics.dir/forecaster.cc.o.d"
  "/root/repo/src/analytics/stats.cc" "src/analytics/CMakeFiles/edadb_analytics.dir/stats.cc.o" "gcc" "src/analytics/CMakeFiles/edadb_analytics.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
