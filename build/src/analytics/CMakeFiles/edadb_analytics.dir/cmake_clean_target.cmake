file(REMOVE_RECURSE
  "libedadb_analytics.a"
)
