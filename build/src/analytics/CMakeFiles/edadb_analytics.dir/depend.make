# Empty dependencies file for edadb_analytics.
# This may be replaced when dependencies are built.
