file(REMOVE_RECURSE
  "CMakeFiles/edadb_analytics.dir/detector.cc.o"
  "CMakeFiles/edadb_analytics.dir/detector.cc.o.d"
  "CMakeFiles/edadb_analytics.dir/forecaster.cc.o"
  "CMakeFiles/edadb_analytics.dir/forecaster.cc.o.d"
  "CMakeFiles/edadb_analytics.dir/stats.cc.o"
  "CMakeFiles/edadb_analytics.dir/stats.cc.o.d"
  "libedadb_analytics.a"
  "libedadb_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
