
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/edadb_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/database.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/db/CMakeFiles/edadb_db.dir/executor.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/executor.cc.o.d"
  "/root/repo/src/db/query.cc" "src/db/CMakeFiles/edadb_db.dir/query.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/query.cc.o.d"
  "/root/repo/src/db/resultset_diff.cc" "src/db/CMakeFiles/edadb_db.dir/resultset_diff.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/resultset_diff.cc.o.d"
  "/root/repo/src/db/snapshot.cc" "src/db/CMakeFiles/edadb_db.dir/snapshot.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/snapshot.cc.o.d"
  "/root/repo/src/db/sql.cc" "src/db/CMakeFiles/edadb_db.dir/sql.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/sql.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/edadb_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/edadb_db.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/edadb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/edadb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/edadb_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
