file(REMOVE_RECURSE
  "CMakeFiles/edadb_db.dir/database.cc.o"
  "CMakeFiles/edadb_db.dir/database.cc.o.d"
  "CMakeFiles/edadb_db.dir/executor.cc.o"
  "CMakeFiles/edadb_db.dir/executor.cc.o.d"
  "CMakeFiles/edadb_db.dir/query.cc.o"
  "CMakeFiles/edadb_db.dir/query.cc.o.d"
  "CMakeFiles/edadb_db.dir/resultset_diff.cc.o"
  "CMakeFiles/edadb_db.dir/resultset_diff.cc.o.d"
  "CMakeFiles/edadb_db.dir/snapshot.cc.o"
  "CMakeFiles/edadb_db.dir/snapshot.cc.o.d"
  "CMakeFiles/edadb_db.dir/sql.cc.o"
  "CMakeFiles/edadb_db.dir/sql.cc.o.d"
  "CMakeFiles/edadb_db.dir/table.cc.o"
  "CMakeFiles/edadb_db.dir/table.cc.o.d"
  "libedadb_db.a"
  "libedadb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
