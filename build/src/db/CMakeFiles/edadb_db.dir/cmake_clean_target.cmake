file(REMOVE_RECURSE
  "libedadb_db.a"
)
