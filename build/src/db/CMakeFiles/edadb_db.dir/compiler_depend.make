# Empty compiler generated dependencies file for edadb_db.
# This may be replaced when dependencies are built.
