file(REMOVE_RECURSE
  "libedadb_journal.a"
)
