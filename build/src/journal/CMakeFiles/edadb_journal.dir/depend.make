# Empty dependencies file for edadb_journal.
# This may be replaced when dependencies are built.
