file(REMOVE_RECURSE
  "CMakeFiles/edadb_journal.dir/journal_miner.cc.o"
  "CMakeFiles/edadb_journal.dir/journal_miner.cc.o.d"
  "libedadb_journal.a"
  "libedadb_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
