# Empty compiler generated dependencies file for edadb_mq.
# This may be replaced when dependencies are built.
