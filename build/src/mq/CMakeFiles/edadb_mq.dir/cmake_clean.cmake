file(REMOVE_RECURSE
  "CMakeFiles/edadb_mq.dir/dispatcher.cc.o"
  "CMakeFiles/edadb_mq.dir/dispatcher.cc.o.d"
  "CMakeFiles/edadb_mq.dir/propagation.cc.o"
  "CMakeFiles/edadb_mq.dir/propagation.cc.o.d"
  "CMakeFiles/edadb_mq.dir/queue_manager.cc.o"
  "CMakeFiles/edadb_mq.dir/queue_manager.cc.o.d"
  "libedadb_mq.a"
  "libedadb_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
