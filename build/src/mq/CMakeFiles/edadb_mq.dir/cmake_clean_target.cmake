file(REMOVE_RECURSE
  "libedadb_mq.a"
)
