file(REMOVE_RECURSE
  "CMakeFiles/edadb_pubsub.dir/broker.cc.o"
  "CMakeFiles/edadb_pubsub.dir/broker.cc.o.d"
  "libedadb_pubsub.a"
  "libedadb_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
