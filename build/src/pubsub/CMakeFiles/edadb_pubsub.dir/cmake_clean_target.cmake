file(REMOVE_RECURSE
  "libedadb_pubsub.a"
)
