# Empty dependencies file for edadb_pubsub.
# This may be replaced when dependencies are built.
