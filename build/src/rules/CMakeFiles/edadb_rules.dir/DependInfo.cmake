
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/indexed_matcher.cc" "src/rules/CMakeFiles/edadb_rules.dir/indexed_matcher.cc.o" "gcc" "src/rules/CMakeFiles/edadb_rules.dir/indexed_matcher.cc.o.d"
  "/root/repo/src/rules/interval_index.cc" "src/rules/CMakeFiles/edadb_rules.dir/interval_index.cc.o" "gcc" "src/rules/CMakeFiles/edadb_rules.dir/interval_index.cc.o.d"
  "/root/repo/src/rules/matcher.cc" "src/rules/CMakeFiles/edadb_rules.dir/matcher.cc.o" "gcc" "src/rules/CMakeFiles/edadb_rules.dir/matcher.cc.o.d"
  "/root/repo/src/rules/rules_engine.cc" "src/rules/CMakeFiles/edadb_rules.dir/rules_engine.cc.o" "gcc" "src/rules/CMakeFiles/edadb_rules.dir/rules_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/edadb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/edadb_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/edadb_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/edadb_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
