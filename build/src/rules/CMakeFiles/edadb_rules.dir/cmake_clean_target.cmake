file(REMOVE_RECURSE
  "libedadb_rules.a"
)
