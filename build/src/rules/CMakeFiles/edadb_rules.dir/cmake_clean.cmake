file(REMOVE_RECURSE
  "CMakeFiles/edadb_rules.dir/indexed_matcher.cc.o"
  "CMakeFiles/edadb_rules.dir/indexed_matcher.cc.o.d"
  "CMakeFiles/edadb_rules.dir/interval_index.cc.o"
  "CMakeFiles/edadb_rules.dir/interval_index.cc.o.d"
  "CMakeFiles/edadb_rules.dir/matcher.cc.o"
  "CMakeFiles/edadb_rules.dir/matcher.cc.o.d"
  "CMakeFiles/edadb_rules.dir/rules_engine.cc.o"
  "CMakeFiles/edadb_rules.dir/rules_engine.cc.o.d"
  "libedadb_rules.a"
  "libedadb_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
