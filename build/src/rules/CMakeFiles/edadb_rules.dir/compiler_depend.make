# Empty compiler generated dependencies file for edadb_rules.
# This may be replaced when dependencies are built.
