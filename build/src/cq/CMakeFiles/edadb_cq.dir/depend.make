# Empty dependencies file for edadb_cq.
# This may be replaced when dependencies are built.
