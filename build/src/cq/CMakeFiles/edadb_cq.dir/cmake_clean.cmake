file(REMOVE_RECURSE
  "CMakeFiles/edadb_cq.dir/continuous_query.cc.o"
  "CMakeFiles/edadb_cq.dir/continuous_query.cc.o.d"
  "CMakeFiles/edadb_cq.dir/join.cc.o"
  "CMakeFiles/edadb_cq.dir/join.cc.o.d"
  "CMakeFiles/edadb_cq.dir/pattern.cc.o"
  "CMakeFiles/edadb_cq.dir/pattern.cc.o.d"
  "CMakeFiles/edadb_cq.dir/window.cc.o"
  "CMakeFiles/edadb_cq.dir/window.cc.o.d"
  "libedadb_cq.a"
  "libedadb_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
