file(REMOVE_RECURSE
  "libedadb_cq.a"
)
