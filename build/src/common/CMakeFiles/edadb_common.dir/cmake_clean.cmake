file(REMOVE_RECURSE
  "CMakeFiles/edadb_common.dir/clock.cc.o"
  "CMakeFiles/edadb_common.dir/clock.cc.o.d"
  "CMakeFiles/edadb_common.dir/coding.cc.o"
  "CMakeFiles/edadb_common.dir/coding.cc.o.d"
  "CMakeFiles/edadb_common.dir/crc32.cc.o"
  "CMakeFiles/edadb_common.dir/crc32.cc.o.d"
  "CMakeFiles/edadb_common.dir/logging.cc.o"
  "CMakeFiles/edadb_common.dir/logging.cc.o.d"
  "CMakeFiles/edadb_common.dir/random.cc.o"
  "CMakeFiles/edadb_common.dir/random.cc.o.d"
  "CMakeFiles/edadb_common.dir/status.cc.o"
  "CMakeFiles/edadb_common.dir/status.cc.o.d"
  "CMakeFiles/edadb_common.dir/string_util.cc.o"
  "CMakeFiles/edadb_common.dir/string_util.cc.o.d"
  "libedadb_common.a"
  "libedadb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
