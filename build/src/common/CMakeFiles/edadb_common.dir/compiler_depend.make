# Empty compiler generated dependencies file for edadb_common.
# This may be replaced when dependencies are built.
