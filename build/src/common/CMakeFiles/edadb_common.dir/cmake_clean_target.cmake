file(REMOVE_RECURSE
  "libedadb_common.a"
)
