# Empty compiler generated dependencies file for edadb_core.
# This may be replaced when dependencies are built.
