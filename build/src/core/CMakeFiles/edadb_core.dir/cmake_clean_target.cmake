file(REMOVE_RECURSE
  "libedadb_core.a"
)
