file(REMOVE_RECURSE
  "CMakeFiles/edadb_core.dir/audit.cc.o"
  "CMakeFiles/edadb_core.dir/audit.cc.o.d"
  "CMakeFiles/edadb_core.dir/event.cc.o"
  "CMakeFiles/edadb_core.dir/event.cc.o.d"
  "CMakeFiles/edadb_core.dir/event_bus.cc.o"
  "CMakeFiles/edadb_core.dir/event_bus.cc.o.d"
  "CMakeFiles/edadb_core.dir/monitor.cc.o"
  "CMakeFiles/edadb_core.dir/monitor.cc.o.d"
  "CMakeFiles/edadb_core.dir/processor.cc.o"
  "CMakeFiles/edadb_core.dir/processor.cc.o.d"
  "CMakeFiles/edadb_core.dir/responder.cc.o"
  "CMakeFiles/edadb_core.dir/responder.cc.o.d"
  "CMakeFiles/edadb_core.dir/sources.cc.o"
  "CMakeFiles/edadb_core.dir/sources.cc.o.d"
  "CMakeFiles/edadb_core.dir/virt.cc.o"
  "CMakeFiles/edadb_core.dir/virt.cc.o.d"
  "libedadb_core.a"
  "libedadb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
