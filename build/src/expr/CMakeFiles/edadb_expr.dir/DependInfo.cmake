
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/ast.cc" "src/expr/CMakeFiles/edadb_expr.dir/ast.cc.o" "gcc" "src/expr/CMakeFiles/edadb_expr.dir/ast.cc.o.d"
  "/root/repo/src/expr/functions.cc" "src/expr/CMakeFiles/edadb_expr.dir/functions.cc.o" "gcc" "src/expr/CMakeFiles/edadb_expr.dir/functions.cc.o.d"
  "/root/repo/src/expr/lexer.cc" "src/expr/CMakeFiles/edadb_expr.dir/lexer.cc.o" "gcc" "src/expr/CMakeFiles/edadb_expr.dir/lexer.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/expr/CMakeFiles/edadb_expr.dir/parser.cc.o" "gcc" "src/expr/CMakeFiles/edadb_expr.dir/parser.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/expr/CMakeFiles/edadb_expr.dir/predicate.cc.o" "gcc" "src/expr/CMakeFiles/edadb_expr.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/edadb_value.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edadb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
