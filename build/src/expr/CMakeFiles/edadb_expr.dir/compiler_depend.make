# Empty compiler generated dependencies file for edadb_expr.
# This may be replaced when dependencies are built.
