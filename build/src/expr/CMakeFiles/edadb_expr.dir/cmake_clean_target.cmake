file(REMOVE_RECURSE
  "libedadb_expr.a"
)
