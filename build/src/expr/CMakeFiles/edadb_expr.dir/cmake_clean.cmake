file(REMOVE_RECURSE
  "CMakeFiles/edadb_expr.dir/ast.cc.o"
  "CMakeFiles/edadb_expr.dir/ast.cc.o.d"
  "CMakeFiles/edadb_expr.dir/functions.cc.o"
  "CMakeFiles/edadb_expr.dir/functions.cc.o.d"
  "CMakeFiles/edadb_expr.dir/lexer.cc.o"
  "CMakeFiles/edadb_expr.dir/lexer.cc.o.d"
  "CMakeFiles/edadb_expr.dir/parser.cc.o"
  "CMakeFiles/edadb_expr.dir/parser.cc.o.d"
  "CMakeFiles/edadb_expr.dir/predicate.cc.o"
  "CMakeFiles/edadb_expr.dir/predicate.cc.o.d"
  "libedadb_expr.a"
  "libedadb_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edadb_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
