# Empty compiler generated dependencies file for sensornet.
# This may be replaced when dependencies are built.
