file(REMOVE_RECURSE
  "CMakeFiles/sensornet.dir/sensornet.cc.o"
  "CMakeFiles/sensornet.dir/sensornet.cc.o.d"
  "sensornet"
  "sensornet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensornet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
