file(REMOVE_RECURSE
  "CMakeFiles/utility_monitoring.dir/utility_monitoring.cc.o"
  "CMakeFiles/utility_monitoring.dir/utility_monitoring.cc.o.d"
  "utility_monitoring"
  "utility_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
