# Empty compiler generated dependencies file for chemsecure.
# This may be replaced when dependencies are built.
