# Empty dependencies file for chemsecure.
# This may be replaced when dependencies are built.
