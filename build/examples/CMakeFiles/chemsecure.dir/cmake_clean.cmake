file(REMOVE_RECURSE
  "CMakeFiles/chemsecure.dir/chemsecure.cc.o"
  "CMakeFiles/chemsecure.dir/chemsecure.cc.o.d"
  "chemsecure"
  "chemsecure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemsecure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
