# Empty compiler generated dependencies file for financial_trading.
# This may be replaced when dependencies are built.
