file(REMOVE_RECURSE
  "CMakeFiles/financial_trading.dir/financial_trading.cc.o"
  "CMakeFiles/financial_trading.dir/financial_trading.cc.o.d"
  "financial_trading"
  "financial_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
