#!/usr/bin/env bash
# CI-style gate for the concurrent event path:
#   1. configure + build with -Werror (plus -Wthread-safety under Clang,
#      where the common/mutex.h annotations are machine-checked);
#   2. run the full ctest suite;
#   3. rebuild with EDADB_SANITIZE=address;undefined and re-run the
#      suite so memory errors and UB fail the gate too;
#   4. (optional, CHECK_TSAN=1) rebuild with EDADB_SANITIZE=thread and
#      run the *_concurrency_test suites under TSan.
#   5. clang-tidy over src/ (skipped when not installed).
#
# Usage: scripts/check.sh            # steps 1-3 + 5
#        CHECK_TSAN=1 scripts/check.sh  # also step 4
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== test $dir"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

echo "=== 1+2: -Werror build + full test suite"
run_suite build-check -DEDADB_WERROR=ON

echo "=== 3: ASan+UBSan build + full test suite"
run_suite build-asan -DEDADB_WERROR=ON "-DEDADB_SANITIZE=address;undefined"

if [ "${CHECK_TSAN:-0}" = "1" ]; then
  echo "=== 4: TSan build + concurrency stress tests"
  cmake -B build-tsan -S . -DEDADB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" >/dev/null
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
      -R 'concurrency|integration')
fi

echo "=== 5: clang-tidy"
scripts/run_clang_tidy.sh build-check

echo "check.sh: all gates green."
