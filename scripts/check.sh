#!/usr/bin/env bash
# CI-style gate for the concurrent event path:
#   1. project lint (scripts/lint.py): self-test against the seeded
#      violation fixtures, then the real tree; then the whole-program
#      static analyzer (scripts/analyze.py): self-test, then the tree
#      gate (zero unsuppressed/unbaselined findings);
#   2. configure + build with -Werror (plus -Wthread-safety under Clang,
#      where the common/mutex.h annotations are machine-checked) and run
#      the tier-1 ctest suite (-L tier1: fast, deterministic);
#   3. EDADB_CHECK_STATUS build (unchecked-Status detector armed) and
#      the status-discipline suite, including the abort death tests;
#   4. rebuild with EDADB_SANITIZE=address;undefined and re-run the
#      tier-1 suite so memory errors and UB fail the gate too;
#   5. crash-recovery torture suite (-L torture) on the ASan build,
#      bounded to CHECK_TORTURE_SCHEDULES randomized schedules so the
#      gate stays fast; export EDADB_TEST_SEED to replay a failure;
#   6. (optional, CHECK_TSAN=1) rebuild with EDADB_SANITIZE=thread and
#      run the *_concurrency_test suites under TSan;
#   7. clang-tidy over src/ and tests/. Missing clang-tidy FAILS the
#      gate (no silent degradation); set CHECK_SKIP_TIDY=1 to skip
#      explicitly on machines without LLVM.
#
# Usage: scripts/check.sh               # stages 1-5 + 7
#        CHECK_TSAN=1 scripts/check.sh  # also stage 6
#        CHECK_SKIP_TIDY=1 scripts/check.sh  # no LLVM installed
#
# The first failing stage aborts the run; a per-stage summary prints on
# exit either way.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
PYTHON="${PYTHON:-python3}"

# ----------------------------------------------------------------------
# Stage bookkeeping: every stage records PASS/FAIL/SKIP; the summary
# prints on exit even when a stage aborts the script.
declare -a SUMMARY=()
CURRENT_STAGE=""

print_summary() {
  echo
  echo "== check.sh stage summary"
  if [ "${#SUMMARY[@]}" -eq 0 ]; then
    echo "  (no stages ran)"
  else
    printf '  %s\n' "${SUMMARY[@]}"
  fi
}
trap 'if [ -n "$CURRENT_STAGE" ]; then SUMMARY+=("FAIL  $CURRENT_STAGE"); fi; print_summary' EXIT

stage() {  # stage <name> <command> [args...]
  local name="$1"
  shift
  echo "=== $name"
  CURRENT_STAGE="$name"
  "$@"
  CURRENT_STAGE=""
  SUMMARY+=("PASS  $name")
}

skip() {  # skip <name> <reason>
  echo "=== $1 — SKIPPED ($2)"
  SUMMARY+=("SKIP  $1 ($2)")
}

run_suite() {
  local dir="$1"
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== test $dir (tier1)"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L tier1)
}

check_status_suite() {
  # Detector builds change Status's layout, so this is its own tree;
  # only the library + common_test are built to keep the stage cheap.
  cmake -B build-checkstatus -S . -DEDADB_CHECK_STATUS=ON >/dev/null
  cmake --build build-checkstatus -j "$JOBS" --target common_test >/dev/null
  (cd build-checkstatus && ctest --output-on-failure -R '^common_test$')
}

tidy_gate() {
  local tidy="${CLANG_TIDY:-clang-tidy}"
  if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "check.sh: '$tidy' not found — the static-analysis gate cannot run." >&2
    echo "check.sh: install clang-tidy (e.g. apt install clang-tidy) or" >&2
    echo "check.sh: re-run with CHECK_SKIP_TIDY=1 to skip it explicitly." >&2
    return 1
  fi
  scripts/run_clang_tidy.sh build-check
}

# ----------------------------------------------------------------------
# Preflight: name the toolchain so a degraded run is visible up front.
if ! "${CXX:-c++}" --version 2>/dev/null | grep -qi clang; then
  echo "note: compiler is not Clang — the -Wthread-safety lock-discipline" >&2
  echo "note: analysis does not run here; CI's clang job covers it." >&2
fi

stage "1 lint (self-test + tree)" \
  bash -c "\"$PYTHON\" scripts/lint.py --self-test && \"$PYTHON\" scripts/lint.py"

# Whole-program concurrency & clock-domain analyzer (scripts/analyze.py):
# self-test against the seeded fixtures, then the tree gate — zero
# unsuppressed/unbaselined findings — then the shard-map drift check
# (the committed scripts/analyze_shardmap.json must match what the tree
# generates; regenerate with --write-shardmap after changing a lock
# domain, atomic, or global). The builtin frontend is the pinned gate
# (pure python, no LLVM needed); --frontend=clang is an opt-in
# cross-check where clang++ exists.
stage "1b analyze (self-test + tree + shard map)" \
  bash -c "\"$PYTHON\" scripts/analyze.py --self-test && \
    \"$PYTHON\" scripts/analyze.py --frontend=builtin && \
    \"$PYTHON\" scripts/analyze.py --check-shardmap"

stage "2 -Werror build + tier-1 tests" \
  run_suite build-check -DEDADB_WERROR=ON

# The metrics layer must be inert when disabled: the same suites that
# exercise it above must pass with the kill switch thrown (and the
# registry text/JSON dumps must still be well-formed, which
# metrics_test asserts in both modes).
stage "2b metrics kill-switch (EDADB_METRICS=0)" \
  bash -c "cd build-check && EDADB_METRICS=0 ctest --output-on-failure \
    -R '^(common_test|mq_test|core_test)\$'"

stage "3 EDADB_CHECK_STATUS detector suite" \
  check_status_suite

stage "4 ASan+UBSan build + tier-1 tests" \
  run_suite build-asan -DEDADB_WERROR=ON "-DEDADB_SANITIZE=address;undefined"

stage "5 crash-recovery torture (ASan, bounded)" \
  bash -c "cd build-asan && \
    EDADB_TORTURE_SCHEDULES=\"${CHECK_TORTURE_SCHEDULES:-60}\" \
    ctest --output-on-failure -L torture"

if [ "${CHECK_TSAN:-0}" = "1" ]; then
  tsan_suite() {
    cmake -B build-tsan -S . -DEDADB_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS" >/dev/null
    (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
        -R 'concurrency|integration')
  }
  stage "6 TSan build + concurrency stress tests" tsan_suite
else
  skip "6 TSan build + concurrency stress tests" "set CHECK_TSAN=1 to enable"
fi

if [ "${CHECK_SKIP_TIDY:-0}" = "1" ]; then
  skip "7 clang-tidy (src + tests)" "CHECK_SKIP_TIDY=1"
else
  stage "7 clang-tidy (src + tests)" tidy_gate
fi

echo "check.sh: all gates green."
