#!/usr/bin/env bash
# CI-style gate for the concurrent event path:
#   1. configure + build with -Werror (plus -Wthread-safety under Clang,
#      where the common/mutex.h annotations are machine-checked);
#   2. run the tier-1 ctest suite (-L tier1: fast, deterministic);
#   3. rebuild with EDADB_SANITIZE=address;undefined and re-run the
#      suite so memory errors and UB fail the gate too;
#   4. crash-recovery torture suite (-L torture) on the ASan build,
#      bounded to CHECK_TORTURE_SCHEDULES randomized schedules so the
#      gate stays fast; export EDADB_TEST_SEED to replay a failure.
#   5. (optional, CHECK_TSAN=1) rebuild with EDADB_SANITIZE=thread and
#      run the *_concurrency_test suites under TSan.
#   6. clang-tidy over src/ (skipped when not installed).
#
# Usage: scripts/check.sh            # steps 1-4 + 6
#        CHECK_TSAN=1 scripts/check.sh  # also step 5
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  echo "== configure $dir ($*)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "== build $dir"
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== test $dir (tier1)"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L tier1)
}

echo "=== 1+2: -Werror build + tier-1 test suite"
run_suite build-check -DEDADB_WERROR=ON

echo "=== 3: ASan+UBSan build + tier-1 test suite"
run_suite build-asan -DEDADB_WERROR=ON "-DEDADB_SANITIZE=address;undefined"

echo "=== 4: crash-recovery torture (ASan, bounded)"
(cd build-asan &&
  EDADB_TORTURE_SCHEDULES="${CHECK_TORTURE_SCHEDULES:-60}" \
  ctest --output-on-failure -L torture)

if [ "${CHECK_TSAN:-0}" = "1" ]; then
  echo "=== 5: TSan build + concurrency stress tests"
  cmake -B build-tsan -S . -DEDADB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" >/dev/null
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
      -R 'concurrency|integration')
fi

echo "=== 6: clang-tidy"
scripts/run_clang_tidy.sh build-check

echo "check.sh: all gates green."
