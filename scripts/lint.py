#!/usr/bin/env python3
"""Project lint: fast, AST-free checks for repo invariants that
clang-tidy cannot express (or that must hold even on machines without
LLVM installed). Run from scripts/check.sh and CI; self-tests run
against the seeded violation fixtures in scripts/lint_fixtures/.

Rules (scope in parentheses):

  raw-mutex        (src/)        std::mutex / std::recursive_mutex /
                                 std::lock_guard / std::scoped_lock /
                                 std::condition_variable outside
                                 common/mutex.{h,cc}. Use the
                                 TSA-annotated wrappers so the locking
                                 discipline stays machine-checked.
                                 (std::shared_mutex + std::unique_lock
                                 are allowed: reader-writer locks have
                                 no wrapper yet.)
  raw-io           (src/)        raw ::fsync/::fdatasync/::open/::write/
                                 ::pwrite/::pread/::close/::ftruncate
                                 outside storage/file.cc, so failpoint
                                 coverage and durability reasoning stay
                                 centralized.
  void-status-discard (everywhere)
                                 `(void)call(...)` / `static_cast<void>(
                                 call(...))`. A dropped Status must use
                                 EDADB_IGNORE_STATUS(s, "reason"); a
                                 dropped non-Status value should simply
                                 not be cast (nothing warns unless the
                                 type is nodiscard, and then the drop is
                                 a bug).
  failpoint-name   (src/, tests/) FAILPOINT site names must match
                                 `module.site[.detail]` (lowercase,
                                 dot-separated) so torture schedules and
                                 docs can group sites by module.
  raw-new-delete   (src/)        raw `new` / `delete`. Use value types /
                                 std::make_unique. `unique_ptr<T>(new T(
                                 ...))` is allowed (private-constructor
                                 factories), as is explicitly suppressed
                                 use (see below).
  raw-sleep        (src/, tests/) std::this_thread::sleep_for / usleep /
                                 nanosleep outside src/common/clock.* and
                                 tests/testing/. A sleep in src/ is a
                                 latency decision that belongs behind the
                                 Clock abstraction; a sleep in a test is
                                 a flaky race-by-timer — use the
                                 tests/testing/sleep.h helper (which
                                 documents the residual cases) or a
                                 CondVar/SimulatedClock. Textual backstop
                                 to analyze.py's wait-under-lock check.
  adhoc-stats      (src/)        `struct ...Stats` outside the metrics
                                 layer (common/metrics.h). New
                                 instrumentation belongs in the metrics
                                 registry (counters/gauges/histograms,
                                 DESIGN.md §11) so it shows up in
                                 __metrics and the dump tooling; a
                                 deliberate ad-hoc snapshot struct needs
                                 a suppression stating why.

Suppression: append `// lint:allow(<rule>): <reason>` to the offending
line. The reason is mandatory — like EDADB_IGNORE_STATUS, the point is
that intentional exceptions carry their justification in the source.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\):\s*\S")
FAILPOINT_RE = re.compile(r'\bFAILPOINT(?:_STATUS|_CRASH|_DELAY)?\s*\(\s*"([^"]*)"')
FAILPOINT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|lock_guard|scoped_lock|condition_variable)\b"
)
RAW_IO_RE = re.compile(
    r"::(fsync|fdatasync|open|write|pwrite|pread|close|ftruncate)\s*\("
)
# `(void)` applied to something that is then *called* — i.e. a discarded
# call result. `(void)identifier;` (unused-parameter idiom) stays legal.
VOID_CALL_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.>\[\]-]*\s*\(")
STATIC_CAST_VOID_RE = re.compile(r"static_cast<\s*void\s*>")
NEW_ANY_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete(\s*\[\s*\])?\s")
SMART_WRAP_NEW_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*new\b")
ADHOC_STATS_RE = re.compile(r"\bstruct\s+\w*Stats\b")
RAW_SLEEP_RE = re.compile(r"\b(sleep_for|usleep|nanosleep)\s*\(")


def strip_code(lines):
    """Returns lines with string/char literals and comments blanked out
    (same length not guaranteed; column fidelity is not needed). Keeps a
    parallel copy of the raw lines for suppression / FAILPOINT scanning.
    """
    out = []
    in_block = False
    for raw in lines:
        s = []
        i = 0
        n = len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if raw.startswith("//", i):
                break
            if c == '"' or c == "'":
                quote = c
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                s.append(quote + quote)
                continue
            s.append(c)
            i += 1
        out.append("".join(s))
    return out


class Linter:
    def __init__(self):
        self.violations = []

    def report(self, path, lineno, rule, msg):
        self.violations.append((path, lineno, rule, msg))

    def lint_file(self, path, relpath=None):
        rel = (relpath if relpath is not None else os.path.relpath(path, REPO_ROOT)).replace(
            os.sep, "/"
        )
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw_lines = f.read().split("\n")
        except OSError as e:
            self.report(rel, 0, "io-error", str(e))
            return
        code_lines = strip_code(raw_lines)

        in_src = rel.startswith("src/")
        is_mutex_impl = rel in ("src/common/mutex.h", "src/common/mutex.cc")
        is_file_impl = rel == "src/storage/file.cc"
        is_macros = rel == "src/common/macros.h"
        is_metrics_impl = rel in ("src/common/metrics.h", "src/common/metrics.cc")
        in_tests = rel.startswith("tests/")
        sleep_ok = rel in ("src/common/clock.h", "src/common/clock.cc") or \
            rel.startswith("tests/testing/")

        for idx, (raw, code) in enumerate(zip(raw_lines, code_lines), start=1):
            allowed = {m.group(1) for m in ALLOW_RE.finditer(raw)}

            # failpoint-name: scan the *raw* line (names live in strings).
            for m in FAILPOINT_RE.finditer(raw):
                name = m.group(1)
                if "failpoint-name" in allowed:
                    continue
                if not FAILPOINT_NAME_RE.match(name):
                    self.report(
                        rel, idx, "failpoint-name",
                        f'FAILPOINT name "{name}" must match module.site '
                        "(lowercase, dot-separated)",
                    )

            if in_src and not is_mutex_impl and "raw-mutex" not in allowed:
                m = RAW_MUTEX_RE.search(code)
                if m:
                    self.report(
                        rel, idx, "raw-mutex",
                        f"std::{m.group(1)} outside common/mutex.{{h,cc}}; "
                        "use the TSA-annotated wrappers (edadb::Mutex, "
                        "MutexLock, CondVar)",
                    )

            if in_src and not is_file_impl and "raw-io" not in allowed:
                m = RAW_IO_RE.search(code)
                if m:
                    self.report(
                        rel, idx, "raw-io",
                        f"raw ::{m.group(1)}() outside storage/file.cc; route "
                        "I/O through the storage file layer (failpoints + "
                        "durability reasoning live there)",
                    )

            if not is_macros and "void-status-discard" not in allowed:
                if VOID_CALL_RE.search(code) or STATIC_CAST_VOID_RE.search(code):
                    self.report(
                        rel, idx, "void-status-discard",
                        "(void)-discard of a call result; a dropped Status "
                        'must use EDADB_IGNORE_STATUS(s, "reason"), a '
                        "non-Status result needs no cast",
                    )

            if in_src and "raw-new-delete" not in allowed:
                # A factory wrap may break the line after `unique_ptr<T>(`,
                # leaving `new T(...)` on the continuation — join with the
                # previous line so the wrap is still recognized.
                wrap_ctx = code
                if idx >= 2:
                    wrap_ctx = code_lines[idx - 2].strip() + " " + code.strip()
                if NEW_ANY_RE.search(code) and not SMART_WRAP_NEW_RE.search(wrap_ctx):
                    self.report(
                        rel, idx, "raw-new-delete",
                        "raw `new`; use std::make_unique / a value type, or "
                        "wrap immediately in unique_ptr<T>(new T(...)) for "
                        "private-constructor factories",
                    )
                if DELETE_RE.search(code) and "= delete" not in code:
                    self.report(
                        rel, idx, "raw-new-delete",
                        "raw `delete`; owning pointers must be smart pointers",
                    )

            if (in_src or in_tests) and not sleep_ok and \
                    "raw-sleep" not in allowed:
                m = RAW_SLEEP_RE.search(code)
                if m:
                    self.report(
                        rel, idx, "raw-sleep",
                        f"raw {m.group(1)}() outside src/common/clock.* and "
                        "tests/testing/; in src/ route delays through the "
                        "Clock abstraction, in tests use "
                        "testing/sleep.h (or better, a CondVar / "
                        "SimulatedClock) so timing races stay corralled",
                    )

            if in_src and not is_metrics_impl and "adhoc-stats" not in allowed:
                m = ADHOC_STATS_RE.search(code)
                if m:
                    self.report(
                        rel, idx, "adhoc-stats",
                        "ad-hoc Stats struct outside the metrics layer; use "
                        "the metrics registry (common/metrics.h) so the data "
                        "reaches __metrics and the dump tooling, or suppress "
                        "with a reason",
                    )


def iter_files(roots):
    exts = (".h", ".cc")
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    yield os.path.join(dirpath, fn)


def run_lint(paths):
    linter = Linter()
    for path in iter_files(paths):
        linter.lint_file(path)
    for rel, lineno, rule, msg in linter.violations:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if linter.violations:
        print(f"lint.py: {len(linter.violations)} violation(s).")
        return 1
    print("lint.py: clean.")
    return 0


EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def run_self_test():
    """Each fixture file declares the violations it seeds with
    `// expect-lint: rule[, rule]` comments on the offending lines; the
    self-test fails if any expected violation is missed or any
    unexpected one fires. Fixtures are linted as if they lived at the
    src/-relative path named on their first line (`// fixture-path: ...`).
    """
    fixture_dir = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("lint.py --self-test: no fixture dir", fixture_dir, file=sys.stderr)
        return 2
    failures = 0
    files = [
        os.path.join(fixture_dir, f)
        for f in sorted(os.listdir(fixture_dir))
        if f.endswith((".h", ".cc"))
    ]
    if not files:
        print("lint.py --self-test: no fixtures found", file=sys.stderr)
        return 2
    for path in files:
        with open(path, encoding="utf-8") as f:
            lines = f.read().split("\n")
        m = re.match(r"//\s*fixture-path:\s*(\S+)", lines[0])
        relpath = m.group(1) if m else "src/fixture/" + os.path.basename(path)
        expected = {}  # lineno -> set(rules)
        for idx, ln in enumerate(lines, start=1):
            em = EXPECT_RE.search(ln)
            if em:
                expected[idx] = {r.strip() for r in em.group(1).split(",")}
        linter = Linter()
        linter.lint_file(path, relpath=relpath)
        got = {}
        for rel, lineno, rule, _ in linter.violations:
            got.setdefault(lineno, set()).add(rule)
        name = os.path.basename(path)
        for lineno, rules in sorted(expected.items()):
            missing = rules - got.get(lineno, set())
            for rule in sorted(missing):
                print(f"SELF-TEST FAIL {name}:{lineno}: expected [{rule}], not fired")
                failures += 1
        for lineno, rules in sorted(got.items()):
            unexpected = rules - expected.get(lineno, set())
            for rule in sorted(unexpected):
                print(f"SELF-TEST FAIL {name}:{lineno}: unexpected [{rule}]")
                failures += 1
    if failures:
        print(f"lint.py --self-test: {failures} failure(s).")
        return 1
    print(f"lint.py --self-test: {len(files)} fixture file(s) ok.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("paths", nargs="*",
                    help="files or dirs (default: src tests bench examples)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the seeded violation fixtures and verify "
                    "every rule fires exactly where expected")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test()
    paths = args.paths or [os.path.join(REPO_ROOT, d)
                           for d in ("src", "tests", "bench", "examples")
                           if os.path.isdir(os.path.join(REPO_ROOT, d))]
    return run_lint(paths)


if __name__ == "__main__":
    sys.exit(main())
