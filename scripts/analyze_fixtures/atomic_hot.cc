// Seeded seq-cst-hot violation. This file's path is listed in
// HOT_PATH_PREFIXES, standing in for wal/queue_manager/event_ring/
// metrics: a DEFAULTED seq_cst here is either an unnecessary full fence
// or an undocumented dependency on one.
//
// Negative control: spelling std::memory_order_seq_cst out is fine --
// the check targets the silent default, not the ordering itself.
#include <atomic>
#include <cstdint>

#include "support.h"

namespace fx {

// Positive: defaulted ordering on a hot path.
class HotDepthGauge {
 public:
  void Bump() {
    depth_.fetch_add(1);  // expect-analyze: atomic-ordering
  }
  uint64_t Depth() const { return depth_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> depth_{0};
};

// Negative: the same fence, stated explicitly.
class HotExplicitFlag {
 public:
  void Raise() { hot_flag_.store(true, std::memory_order_seq_cst); }
  bool Raised() const {
    return hot_flag_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<bool> hot_flag_{false};
};

}  // namespace fx
