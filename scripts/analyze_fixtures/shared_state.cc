// Seeded shared-state inventory violations: ambient mutable state that
// no lock domain owns and no shard split can carry over.
//
// Negative controls: const/constexpr, thread_local, atomics, named
// mutexes, and singletons whose class locks for itself must stay
// silent.
#include <atomic>
#include <cstdint>

#include "support.h"

namespace fx {

// Positive: a namespace-scope mutable, non-atomic global.
int g_mutable_counter = 0;  // expect-analyze: shared-state

// Positive: a function-static mutable local -- same hazard, only better
// hidden.
int64_t NextFixtureToken() {
  static int64_t token = 0;  // expect-analyze: shared-state
  return ++token;
}

// Negatives: immutable, per-thread, self-synchronizing, or the lock
// itself.
const int kFixtureConstGlobal = 8;
constexpr int kFixtureConstexprGlobal = 9;
thread_local int t_fixture_scratch = 0;
std::atomic<int> g_fixture_atomic{0};
Mutex g_fixture_mu{"fx::g_fixture_mu"};

// Negative: singleton of a class that serializes its own state.
class LockedBox {
 public:
  void Put(int v) {
    MutexLock l(&box_mu_);
    last_ = v;
  }

 private:
  Mutex box_mu_{"LockedBox::box_mu_"};
  int last_ EDADB_GUARDED_BY(box_mu_) = 0;
};

LockedBox* SharedLockedBox() {
  static LockedBox* box = new LockedBox();
  return box;
}

// Positive: singleton of a lockless mutable class -- every accessor
// races once more than one shard runs.
class BareBag {
 public:
  int n = 0;
};

BareBag* SharedBareBag() {
  static BareBag* bag = new BareBag();  // expect-analyze: shared-state
  return bag;
}

}  // namespace fx
