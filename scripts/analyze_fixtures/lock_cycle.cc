// Seeded lock-order violations.
//
// 1. A two-lock cycle that only exists across call boundaries: each
//    function takes one lock directly and reaches the other through a
//    typed-receiver call, so detecting it requires the inter-procedural
//    may-acquire closure, not just per-function nesting.
// 2. A self-deadlock: re-acquiring a non-recursive mutex through a
//    this-call while it is already held.
// 3. Negative control: the same re-acquisition shape on a
//    RecursiveMutex, which must NOT fire.
#include "support.h"

namespace fx {

class CycleTwo;

class CycleOne {
 public:
  void Forward();
  void GrabOne() { MutexLock l(&mu_one_); }

 private:
  Mutex mu_one_{"CycleOne::mu_one_"};
  CycleTwo* two_ EDADB_GUARDED_BY(mu_one_);
};

class CycleTwo {
 public:
  void Back();
  void GrabTwo() { MutexLock l(&mu_two_); }

 private:
  Mutex mu_two_{"CycleTwo::mu_two_"};
  CycleOne* one_ EDADB_GUARDED_BY(mu_two_);
};

// Edge A: holds mu_one_, call chain acquires mu_two_. The cycle finding
// anchors here (earliest edge in the file).
void CycleOne::Forward() {
  MutexLock l(&mu_one_);
  two_->GrabTwo();  // expect-analyze: lock-order
}

// Edge B: holds mu_two_, call chain acquires mu_one_. Closes the cycle.
void CycleTwo::Back() {
  MutexLock l(&mu_two_);
  one_->GrabOne();
}

class SelfDead {
 public:
  void Outer() {
    MutexLock l(&mu_);
    Inner();  // expect-analyze: lock-order
  }
  void Inner() { MutexLock l(&mu_); }

 private:
  Mutex mu_{"SelfDead::mu_"};
};

// Negative: recursive mutexes may be re-acquired on the same thread.
class Reentrant {
 public:
  void Outer() {
    RecursiveMutexLock l(&rmu_);
    Inner();
  }
  void Inner() { RecursiveMutexLock l(&rmu_); }

 private:
  RecursiveMutex rmu_{"Reentrant::rmu_"};
};

}  // namespace fx
