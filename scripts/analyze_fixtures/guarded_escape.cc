// Seeded guarded-field escape violations: references, iterators and
// captures of EDADB_GUARDED_BY storage leaving the critical section --
// the aliases that turn into cross-shard races once lock domains are
// split.
//
// Negative controls: returning a COPY, and a by-ref lambda that dies
// inside the critical section, must stay silent.
#include <cstdint>
#include <functional>
#include <vector>

#include "support.h"

namespace fx {

void RunDeferred(const std::function<void()>& fn);

class EscapeCache {
 public:
  // Positive: a pointer into guarded storage handed to the caller.
  const std::vector<int>* Snapshot() {
    MutexLock l(&cache_mu_);
    return &entries_;  // expect-analyze: guarded-escape
  }

  // Positive: a guarded container's iterator stored through a member.
  void Seek() {
    MutexLock l(&cache_mu_);
    cursor_ = entries_.begin();  // expect-analyze: guarded-escape
  }

  // Positive: guarded fields captured (via this) by a lambda handed to
  // a deferred callee -- it runs after the lock is gone.
  void PublishStats() {
    RunDeferred([this] {
      total_ += entries_.size();  // expect-analyze: guarded-escape
    });
  }

  // Negative: a copy leaves the critical section; a reference does not.
  int Size() {
    MutexLock l(&cache_mu_);
    return static_cast<int>(entries_.size());
  }

  // Negative: the lambda never outlives the statement it is called in.
  int Sum() {
    MutexLock l(&cache_mu_);
    int sum = 0;
    auto add = [&] { sum += static_cast<int>(entries_.size()); };
    add();
    return sum;
  }

 private:
  Mutex cache_mu_{"EscapeCache::cache_mu_"};
  std::vector<int> entries_ EDADB_GUARDED_BY(cache_mu_);
  std::vector<int>::const_iterator cursor_ EDADB_GUARDED_BY(cache_mu_);
  uint64_t total_ EDADB_GUARDED_BY(cache_mu_) = 0;
};

}  // namespace fx

// clang frontend only syntax-checks the fixture; give RunDeferred a
// definition so builtin/clang models stay byte-identical anyway.
void fx::RunDeferred(const std::function<void()>& fn) { fn(); }
