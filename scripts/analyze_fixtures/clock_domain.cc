// Seeded clock-domain violations.
//
// - cross-mix: wall- and steady-domain raw reads combined in one
//   expression (taint flows through the local variables).
// - raw-arith: a raw clock read used directly in time arithmetic
//   instead of going through the typed Clock::WallNow()/SteadyNow().
// - Negative control: typed reads (WallNow().micros()) taint nothing.
#include "support.h"

namespace fx {

int64_t MixedDeadline() {
  int64_t wall = NowMicros();
  int64_t steady = SteadyNowMicros();
  return wall - steady;  // expect-analyze: clock-domain
}

bool Expired(int64_t deadline) {
  return NowMicros() > deadline;  // expect-analyze: clock-domain
}

// Negative: typed reads produce compiler-checked values; arithmetic on
// them is the compiler's job, not the analyzer's.
int64_t TypedOk(int64_t base) {
  return WallNow().micros() + base;
}

}  // namespace fx
