// Seeded atomic-ordering violations: relaxed RMWs used for
// synchronization and mixed orderings on one variable.
//
// Negative controls: a pure relaxed counter (result discarded) and a
// properly paired release/acquire flag must stay silent.
#include <atomic>
#include <cstdint>

#include "support.h"

namespace fx {

// Positive: a relaxed CAS is synchronization-shaped by construction --
// whoever wins believes it owns something, but relaxed publishes none
// of the state the ownership protects.
class RelaxedGate {
 public:
  bool TryAcquire() {
    int expected = 0;
    return gate_.compare_exchange_strong(  // expect-analyze: atomic-ordering
        expected, 1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> gate_{0};
};

// Positive: a relaxed fetch_add whose RESULT feeds further logic (here:
// returned to the caller) is not a counter bump.
class TicketDrum {
 public:
  uint64_t Draw() {
    return tickets_.fetch_add(1, std::memory_order_relaxed);  // expect-analyze: atomic-ordering
  }

 private:
  std::atomic<uint64_t> tickets_{0};
};

// Positive: release store paired with a relaxed load -- the release is
// unobservable through the relaxed side.
class MixedFlag {
 public:
  void Publish() {
    payload_ = 42;
    mixed_ready_.store(true, std::memory_order_release);  // expect-analyze: atomic-ordering
  }
  bool Poll() const {
    return mixed_ready_.load(std::memory_order_relaxed);
  }
  int payload() const { return payload_; }

 private:
  std::atomic<bool> mixed_ready_{false};
  int payload_ = 0;
};

// Negative: pure counter -- relaxed RMW with the result discarded, and
// every site relaxed (nothing to pair with).
class HitCounter {
 public:
  void Hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t Total() const { return hits_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> hits_{0};
};

// Negative: the textbook pairing -- release store, acquire load.
class PairedFlag {
 public:
  void Publish() { paired_ready_.store(true, std::memory_order_release); }
  bool Ready() const {
    return paired_ready_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> paired_ready_{false};
};

}  // namespace fx
