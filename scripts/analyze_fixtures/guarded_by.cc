// Seeded guarded-by ratchet violation.
//
// In a mutex-owning class, every mutable non-exempt field must carry an
// EDADB_GUARDED_BY annotation. Exempt: std::atomic (own synchronization),
// const (immutable after construction), CondVar and the mutexes
// themselves. Classes that own no mutex are outside the ratchet.
#include <atomic>

#include "support.h"

namespace fx {

class Unguarded {
 public:
  void Set(int v) {
    MutexLock l(&mu_);
    value_ = v;
  }

 private:
  Mutex mu_{"Unguarded::mu_"};
  int value_;  // expect-analyze: guarded-by
  int annotated_ EDADB_GUARDED_BY(mu_);
  const int limit_ = 8;
  std::atomic<int> counter_;
  CondVar cv_;
};

// Negative: no mutex, no ratchet.
class PlainBag {
 private:
  int a_;
  int b_;
};

}  // namespace fx
