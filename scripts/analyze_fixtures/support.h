// Mini shims so the analyzer fixtures are valid, self-contained C++.
//
// The builtin frontend only needs the *shapes* (Mutex members, MutexLock
// RAII, CondVar::Wait, ::fdatasync), but keeping the fixtures compilable
// means the clang JSON-AST frontend can analyze the very same files on
// machines that have clang++ (`analyze.py --self-test --frontend=clang`).
//
// This header must itself produce ZERO findings: the self-test treats any
// finding without a matching `// expect-analyze:` comment as a failure.
#ifndef EDADB_SCRIPTS_ANALYZE_FIXTURES_SUPPORT_H_
#define EDADB_SCRIPTS_ANALYZE_FIXTURES_SUPPORT_H_

#include <cstdint>

// POSIX-compatible declarations so `::fdatasync` / `::write` resolve
// without pulling in <unistd.h> (signatures match glibc on LP64).
extern "C" int fdatasync(int fd);
extern "C" long write(int fd, const void* buf, unsigned long n);

#define EDADB_GUARDED_BY(mu)

namespace fx {

class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) { (void)name; }
  void Lock() {}
  void Unlock() {}
};

class RecursiveMutex {
 public:
  explicit RecursiveMutex(const char* name) { (void)name; }
  void Lock() {}
  void Unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) { (void)mu; }
};

class RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) { (void)mu; }
};

class CondVar {
 public:
  void Wait(Mutex* mu) { (void)mu; }
  bool WaitForMicros(Mutex* mu, int64_t timeout) {
    (void)mu;
    (void)timeout;
    return true;
  }
  void Signal() {}
  void SignalAll() {}
};

// Raw (untyped) clock reads: these are what the clock-domain check
// taints. The typed reads below produce domain-checked values and must
// taint nothing.
int64_t NowMicros();
int64_t SteadyNowMicros();

struct WallMicros {
  int64_t v;
  int64_t micros() const { return v; }
};

WallMicros WallNow();

}  // namespace fx

#endif  // EDADB_SCRIPTS_ANALYZE_FIXTURES_SUPPORT_H_
