// Seeded wait-under-lock and cv-wait-no-loop violations.
//
// - Direct blocking syscall (::fdatasync) under a held mutex.
// - Transitive ::write reached through a typed-receiver call while a
//   mutex is held (needs the may-block closure).
// - CondVar wait while a DIFFERENT mutex is also held (classic
//   convoy/deadlock shape; waiting on one's own mutex is fine).
// - std::this_thread::sleep_for under a lock.
// - cv-wait-no-loop: a CondVar wait with no enclosing predicate loop.
// - Negative controls: ::write with no lock held, and a correctly
//   looped wait on the waited mutex only.
#include <chrono>
#include <thread>

#include "support.h"

namespace fx {

class DirectSync {
 public:
  void Flush() {
    MutexLock l(&mu_);
    ::fdatasync(fd_);  // expect-analyze: wait-under-lock
  }

 private:
  Mutex mu_{"DirectSync::mu_"};
  int fd_ EDADB_GUARDED_BY(mu_);
};

// Negative: blocking with no lock held is fine on its own...
class Sink {
 public:
  void Emit() { ::write(1, "x", 1); }
};

// ...but reaching it while holding a mutex is not.
class CallsUnderLock {
 public:
  void Publish() {
    MutexLock l(&mu_);
    sink_->Emit();  // expect-analyze: wait-under-lock
  }

 private:
  Mutex mu_{"CallsUnderLock::mu_"};
  Sink* sink_ EDADB_GUARDED_BY(mu_);
};

class TwoLockWait {
 public:
  void Drain() {
    MutexLock outer(&reg_mu_);
    MutexLock inner(&mu_);
    while (busy_) {
      cv_.Wait(&mu_);  // expect-analyze: wait-under-lock
    }
  }

 private:
  Mutex reg_mu_{"TwoLockWait::reg_mu_"};
  Mutex mu_{"TwoLockWait::mu_"};
  CondVar cv_;
  bool busy_ EDADB_GUARDED_BY(mu_);
};

class SleepyHold {
 public:
  void Nap() {
    MutexLock l(&mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect-analyze: wait-under-lock
  }

 private:
  Mutex mu_{"SleepyHold::mu_"};
};

class NoLoopWait {
 public:
  void WaitOnce() {
    MutexLock l(&mu_);
    cv_.Wait(&mu_);  // expect-analyze: cv-wait-no-loop
  }

 private:
  Mutex mu_{"NoLoopWait::mu_"};
  CondVar cv_;
};

// Negative: waiting on the mutex you hold, inside a predicate loop, is
// the correct pattern and must produce nothing.
class OkWait {
 public:
  void WaitReady() {
    MutexLock l(&mu_);
    while (!ready_) {
      cv_.Wait(&mu_);
    }
  }

 private:
  Mutex mu_{"OkWait::mu_"};
  CondVar cv_;
  bool ready_ EDADB_GUARDED_BY(mu_);
};

}  // namespace fx
