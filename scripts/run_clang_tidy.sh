#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the library sources and
# the test suites, against a CMake-exported compile_commands.json.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [source-glob...]
#   build-dir     compile-commands dir (default: build). Configured —
#                 or re-configured — with CMAKE_EXPORT_COMPILE_COMMANDS=ON
#                 when the database is missing.
#   source-glob   restrict to matching paths (default: src/ and tests/)
#
# Missing clang-tidy is an ERROR (exit 2) with an install hint, so a
# gate that calls this script cannot silently degrade; scripts/check.sh
# offers CHECK_SKIP_TIDY=1 for an explicit opt-out.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found." >&2
  echo "run_clang_tidy: install clang-tidy (e.g. apt install clang-tidy)" >&2
  echo "run_clang_tidy: or set CLANG_TIDY to the binary to use." >&2
  exit 2
fi

BUILD_DIR="${1:-build}"
shift || true

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: exporting $BUILD_DIR/compile_commands.json"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json still missing" >&2
  echo "run_clang_tidy: after configure; cannot run." >&2
  exit 2
fi

if [ "$#" -gt 0 ]; then
  mapfile -t FILES < <(printf '%s\n' "$@" | xargs -I{} find {} -name '*.cc')
else
  # tests/compile/ holds negative-compile probes (intentionally broken).
  mapfile -t FILES < <(find src tests -name '*.cc' \
      -not -path 'tests/compile/*' | sort)
fi

echo "run_clang_tidy: checking ${#FILES[@]} files with $($TIDY --version | head -1)"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "run_clang_tidy: clean."
