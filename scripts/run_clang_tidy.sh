#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the library sources.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [source-glob...]
#   build-dir     compile-commands dir (default: build; configured on
#                 demand with CMAKE_EXPORT_COMPILE_COMMANDS=ON)
#   source-glob   restrict to matching paths (default: all of src/)
#
# Exits 0 with a notice when clang-tidy is not installed, so CI images
# without LLVM still pass the rest of scripts/check.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found; skipping static analysis." >&2
  echo "run_clang_tidy: install clang-tidy or set CLANG_TIDY to enable." >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
shift || true

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [ "$#" -gt 0 ]; then
  mapfile -t FILES < <(printf '%s\n' "$@" | xargs -I{} find {} -name '*.cc')
else
  mapfile -t FILES < <(find src -name '*.cc' | sort)
fi

echo "run_clang_tidy: checking ${#FILES[@]} files with $($TIDY --version | head -1)"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "run_clang_tidy: clean."
