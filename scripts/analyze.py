#!/usr/bin/env python3
"""Whole-program static concurrency & clock-domain analyzer.

Where scripts/lint.py enforces line-local idiom, this tool builds a
whole-program model (classes, mutex members, member functions, call
sites, lock scopes) and runs four inter-procedural checks over it:

  lock-order       Static acquired-before graph over the NAMED mutexes
                   (common/mutex.h wrappers, e.g. "QueueManager::mu_").
                   An edge A->B is recorded when B is acquired -- either
                   directly or through any resolvable call chain --
                   while A is held. A cycle in the graph is a latent
                   deadlock: the runtime lock_graph checker only sees
                   interleavings the tests happen to execute; this sees
                   every path the call graph admits.
  wait-under-lock  A named mutex held across a blocking operation:
                   fdatasync/fsync, raw ::write/::pwrite, sleep_for/
                   usleep/nanosleep, or a CondVar wait on a DIFFERENT
                   mutex -- again through any resolvable call chain.
                   Intentional cases (the WAL group-commit fdatasync
                   under WalWriter::wal_mu_ is the canonical one) are
                   suppressed with a mandatory justification in
                   scripts/analyze_suppress.json.
  cv-wait-no-loop  CondVar::Wait / WaitForMicros outside an enclosing
                   while/for/do loop: spurious wakeups and missed
                   predicate re-checks (lost wakeup) otherwise.
  clock-domain     Raw clock reads (Clock::NowMicros / SteadyNowMicros
                   and locals tainted by them) flowing into time
                   arithmetic or ordering comparisons, and any statement
                   mixing wall- and steady-tainted raw terms. Typed
                   reads (WallNow()/SteadyNow(), WallMicros/SteadyMicros
                   in common/clock.h) are enforced by the compiler and
                   the tests/compile/clock_domain_probe.cc WILL_FAIL
                   probes; this check covers the raw-integer code that
                   remains (persisted rows, stamping).
  guarded-by       Annotation-coverage ratchet: in any class owning a
                   named mutex, every mutable field should carry
                   EDADB_GUARDED_BY (consts -- including top-level
                   `T* const` pointers -- CondVars and the
                   synchronization members themselves are exempt;
                   std::atomic fields are exempt from the ANNOTATION
                   ratchet but are NOT exempt from analysis: every one
                   is classified by the atomic-ordering audit below and
                   inventoried in the shard map).
                   Existing debt lives in scripts/analyze_baseline.json
                   and may only SHRINK: a baselined field that gains an
                   annotation (or disappears) must be removed from the
                   baseline, and new unannotated fields are errors.
  atomic-ordering  Memory-ordering audit over every std::atomic /
                   std::atomic_ref operation site:
                     relaxed-rmw   a relaxed read-modify-write whose
                                   result feeds further logic, or a
                                   relaxed CAS/exchange -- the
                                   synchronization-shaped uses where
                                   relaxed is usually a bug. Pure
                                   counter bumps (fetch_add/sub with the
                                   result discarded) are exempt.
                     mixed-ordering release-or-stronger writes paired
                                   with relaxed loads (or acquire reads
                                   paired with relaxed stores) on the
                                   same variable: the strong side's
                                   ordering is unobservable through the
                                   relaxed side.
                     seq-cst-hot   a DEFAULTED (seq_cst) ordering on a
                                   hot-path file (wal, queue_manager,
                                   event_ring, metrics): the default is
                                   either an unnecessary fence or an
                                   undocumented dependency on one.
                   Intentional protocols (the event_ring seqlock,
                   metrics counters) carry fingerprinted suppressions.
  shared-state     Ambient shared state: a namespace-scope global or
                   function-static local that is mutable, non-atomic,
                   and not a mutex-guarded singleton is invisible to
                   every lock domain and will not survive sharding.
                   thread_local, const/constexpr, atomics and
                   singletons whose class owns a mutex are classified
                   clean (and inventoried in the shard map).
  guarded-escape   References, pointers or iterators to an
                   EDADB_GUARDED_BY field that escape the owning class:
                   returned from a method (by reference/pointer/
                   iterator), stored into a member, or captured by
                   reference (or via this) in a lambda that is stored
                   or handed to a deferred callee. Once domains are
                   sharded these become cross-shard aliases.

Shard map artifact
------------------
`--write-shardmap` regenerates scripts/analyze_shardmap.json from the
src/ model: every lock domain (owner class -> mutexes -> guarded fields
-> methods touching them), every atomic field with its ordering
classification, every global/singleton, and the cross-domain call edges
from the call-graph closure. The artifact is committed; CI and
check.sh regenerate it and fail on drift (`--check-shardmap`), so new
ambient shared state cannot sneak in silently. It is the planning input
for the sharding refactor (DESIGN.md §12).

Frontends
---------
  --frontend=clang    Drives `clang++ -fsyntax-only -Xclang
                      -ast-dump=json` over compile_commands.json (no
                      libclang needed) and extracts the model from the
                      JSON AST.
  --frontend=builtin  A dependency-free structural parser (scope/brace
                      tracking over comment- and string-stripped
                      source). Deliberately under-approximate: a call it
                      cannot resolve contributes no edges, so it reports
                      no false cycles.
  --frontend=auto     clang if a working clang++ is on PATH, else
                      builtin.

The ctest/check.sh/CI gate pins --frontend=builtin so fingerprints (and
the suppression/baseline files keyed on them) are identical on machines
with and without LLVM; clang mode is an opt-in cross-check. Both
frontends feed the same fact model and the same checks, and
--self-test validates whichever frontend runs against the seeded
fixtures in scripts/analyze_fixtures/.

Findings, suppression, baseline
-------------------------------
Every finding prints file:line, an evidence path (lock scopes and call
chain), a stable symbol-based key (never line numbers, so edits that
move code do not churn it) and a short fingerprint sha1(check|key).

  scripts/analyze_suppress.json   permanent design-intent exceptions;
                                  `reason` is mandatory; a suppression
                                  matching no finding is a hard error
                                  (stale suppressions rot).
  scripts/analyze_baseline.json   pre-existing guarded-by debt;
                                  shrink-only (stale entries are errors,
                                  new findings are errors). Regenerate
                                  with --write-baseline after paying
                                  debt down.

Exit status: 0 clean, 1 findings or stale entries, 2 usage/internal.
"""

import argparse
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SUPPRESS_PATH = os.path.join(REPO_ROOT, "scripts", "analyze_suppress.json")
BASELINE_PATH = os.path.join(REPO_ROOT, "scripts", "analyze_baseline.json")
SHARDMAP_PATH = os.path.join(REPO_ROOT, "scripts", "analyze_shardmap.json")
FIXTURE_DIR = os.path.join(REPO_ROOT, "scripts", "analyze_fixtures")

# --------------------------------------------------------------------------
# Fact model (shared by both frontends)
# --------------------------------------------------------------------------


class ClassInfo:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file
        self.line = line
        # field name -> registered lock name ("Class::mu_") for named
        # Mutex/RecursiveMutex members; unnamed mutex fields map to
        # "Class::field" so they still have a stable identity.
        self.mutexes = {}
        # field name -> bare class name of its pointee/value type, for
        # receiver resolution (unique_ptr<T>, T*, T&, T).
        self.field_types = {}
        # (name, line, guarded, exempt_reason) for ratchet-relevant fields.
        self.fields = []
        self.methods = set()
        # field name -> mutex FIELD name from EDADB_GUARDED_BY(mu).
        self.guarded = {}
        # field name -> declaration line for std::atomic members.
        self.atomics = {}
        # True if the class declares a raw std::mutex member (allowed
        # only in the checker's own plumbing; used for singleton
        # classification, not the ratchet).
        self.has_raw_mutex = False


class CallSite:
    __slots__ = ("receiver", "op", "name", "line", "held")

    def __init__(self, receiver, op, name, line, held):
        self.receiver = receiver  # identifier before -> . :: (or None)
        self.op = op  # "->", ".", "::" or None
        self.name = name
        self.line = line
        self.held = held  # tuple of lock names held at the call


class BlockOp:
    __slots__ = ("prim", "line", "held", "in_loop", "waited_lock")

    def __init__(self, prim, line, held, in_loop, waited_lock=None):
        self.prim = prim
        self.line = line
        self.held = held
        self.in_loop = in_loop
        self.waited_lock = waited_lock  # for CondVar waits


class ClockUse:
    __slots__ = ("kind", "line", "terms")

    def __init__(self, kind, line, terms):
        self.kind = kind  # "cross-mix" | "raw-arith"
        self.line = line
        self.terms = terms  # sorted tuple of offending term names


class AtomicOp:
    """One std::atomic / std::atomic_ref operation site."""

    __slots__ = ("var", "op", "order", "explicit_order", "used", "file",
                 "line")

    def __init__(self, var, op, order, explicit_order, used, file, line):
        self.var = var  # resolved key: "Class::field", "::g_x", "qual::x"
        self.op = op  # "load" | "store" | "rmw" | "cas" | "exchange"
        self.order = order  # relaxed|consume|acquire|release|acq_rel|seq_cst
        self.explicit_order = explicit_order  # False when defaulted
        self.used = used  # result feeds further logic
        self.file = file
        self.line = line


class EscapeUse:
    """A guarded field's storage escaping its critical section."""

    __slots__ = ("cls", "field", "kind", "line", "detail")

    def __init__(self, cls, field, kind, line, detail):
        self.cls = cls
        self.field = field
        self.kind = kind  # "return-ref" | "member-store" | "lambda"
        self.line = line
        self.detail = detail


class GlobalInfo:
    """A namespace-scope global or function-static local."""

    __slots__ = ("key", "file", "line", "type", "kind", "pointee", "scope")

    def __init__(self, key, file, line, type_text, kind, pointee=None,
                 scope=None):
        self.key = key  # "::name" or "Enclosing::name" for static locals
        self.file = file
        self.line = line
        self.type = type_text
        # plain | atomic | const | mutex | thread-local | singleton
        # ("singleton" = static T* x = new T; classified clean/dirty once
        # every class is known).
        self.kind = kind
        self.pointee = pointee  # class name for singleton pointers
        self.scope = scope  # enclosing function qual for static locals


class FunctionInfo:
    def __init__(self, qual, cls, file, line):
        self.qual = qual  # "Class::Method" or free-function name
        self.cls = cls  # ClassInfo name or None
        self.file = file
        self.line = line
        self.params = {}  # param name -> bare class name
        self.acquires = []  # (lock_name, line)
        self.lock_edges = []  # (held_lock, acquired_lock, line) intra-fn
        self.calls = []  # CallSite
        self.blocks = []  # BlockOp
        self.clock_uses = []  # ClockUse
        self.atomic_ops = []  # AtomicOp
        self.escapes = []  # EscapeUse
        self.field_uses = set()  # names of own-class fields touched
        self.returns_ref = False  # declared return type is T& / T*
        self.statics = {}  # static-local name -> GlobalInfo key


class Model:
    def __init__(self):
        self.classes = {}  # name -> ClassInfo
        self.functions = {}  # qual -> FunctionInfo
        self.globals = {}  # key -> GlobalInfo

    def get_class(self, name, file, line):
        if name not in self.classes:
            self.classes[name] = ClassInfo(name, file, line)
        return self.classes[name]


class Finding:
    def __init__(self, check, key, file, line, message, evidence=None):
        self.check = check
        self.key = key
        self.file = file
        self.line = line
        self.message = message
        self.evidence = evidence or []

    @property
    def fingerprint(self):
        digest = hashlib.sha1(
            (self.check + "|" + self.key).encode("utf-8")).hexdigest()
        return digest[:12]

    def render(self):
        out = (f"{self.file}:{self.line}: [{self.check}] {self.message}"
               f"  [key {self.key} fp {self.fingerprint}]")
        for ev in self.evidence:
            out += f"\n    {ev}"
        return out


# --------------------------------------------------------------------------
# Text utilities
# --------------------------------------------------------------------------


def strip_code(raw_lines):
    """Blanks comments and string/char literal *contents* (quotes kept as
    empty literals), preserving line structure."""
    out = []
    in_block = False
    for raw in raw_lines:
        s = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if raw.startswith("//", i):
                break
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                s.append(quote + quote)
                continue
            s.append(c)
            i += 1
        out.append("".join(s))
    return out


CPP_KEYWORDS = {
    "if", "else", "while", "for", "do", "switch", "case", "return",
    "sizeof", "alignof", "new", "delete", "throw", "catch", "co_await",
    "static_assert", "decltype", "defined", "noexcept", "assert",
    "constexpr", "const", "auto", "void", "int", "bool", "char", "break",
    "continue", "default", "goto", "using", "typedef", "template",
    "typename", "operator", "static_cast", "dynamic_cast", "alignas",
    "reinterpret_cast", "const_cast", "explicit", "inline", "public",
    "private", "protected", "struct", "class", "enum", "union",
}

# Calls that never matter to any check: skipping them keeps the call
# graph small. Macro invocations (EDADB_*, FAILPOINT*, EXPECT/ASSERT)
# are skipped as calls but their ARGUMENT text stays in the statement,
# so calls inside macro arguments are still seen.
CALL_SKIP_PREFIXES = ("EDADB_", "FAILPOINT", "EXPECT_", "ASSERT_", "TEST")

BLOCKING_PRIMS = {
    "fdatasync": "fdatasync",
    "fsync": "fdatasync",
    "write": "write",
    "pwrite": "write",
    "sleep_for": "sleep",
    "usleep": "sleep",
    "nanosleep": "sleep",
}

CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(->|\.|::)\s*)?([A-Za-z_~]\w*)\s*\(")
ACQUIRE_RE = re.compile(
    r"\b(MutexLock|RecursiveMutexLock)\s+\w+\s*\(\s*&\s*([\w.>\-]+)\s*\)")
CV_WAIT_RE = re.compile(
    r"([A-Za-z_][\w.>\-]*)\s*\.\s*(Wait|WaitForMicros)\s*\(\s*&\s*([\w.>\-]+)")
RAW_BLOCK_RE = re.compile(r"::(fdatasync|fsync|write|pwrite)\s*\(")
SLEEP_RE = re.compile(r"\b(sleep_for|usleep|nanosleep)\s*\(")
MUTEX_DECL_RE = re.compile(
    r"\b(Mutex|RecursiveMutex)\s+(\w+)\s*(?:\{\s*\"([^\"]*)\"\s*\})?\s*[;{]")
FIELD_TYPE_RES = [
    re.compile(r"std::(?:unique_ptr|shared_ptr)\s*<\s*([A-Za-z_]\w*)\s*>"
               r"\s+(\w+)\s*[;={]"),
    re.compile(r"\b([A-Z]\w*)\s*[*&]\s*(?:const\s+)?(\w+)\s*[;={]"),
    re.compile(r"\b([A-Z]\w*)\s+(\w+)\s*[;={]"),
]
GUARD_ANNOT_RE = re.compile(r"EDADB_(?:PT_)?GUARDED_BY\s*\(\s*(\w+)\s*\)")
ASSIGN_RE = re.compile(r"(?:^|[(,;]|\b)\s*(?:(?:const|auto|int64_t|"
                       r"TimestampMicros)\s+)*([A-Za-z_]\w*)\s*=[^=]")

# std::atomic operation sites. ATOMIC_REF_RE rewrites an atomic_ref
# view back to its underlying object so `std::atomic_ref<u64>(x[i])
# .load(...)` audits as an op on `x`.
ATOMIC_REF_RE = re.compile(
    r"std\s*::\s*atomic_ref\s*<[^<>]*>\s*\(\s*\*?\s*"
    r"([A-Za-z_]\w*)\s*(?:\[[^\[\]]*\])?\s*\)")
ATOMIC_OP_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\[[^\[\]]*\])?\s*(?:::|\.|->)\s*)*"
    r"[A-Za-z_]\w*)\s*(?:\[[^\[\]]*\])?\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
MEM_ORDER_RE = re.compile(r"memory_order_(relaxed|consume|acquire|release|"
                          r"acq_rel|seq_cst)")
ATOMIC_DECL_RE = re.compile(r"std\s*::\s*atomic\s*<")
# Files whose atomics are on the event hot path: a defaulted seq_cst
# there is either an unnecessary full fence or an undocumented
# dependency on one. (analyze_fixtures/atomic_hot seeds the self-test.)
HOT_PATH_PREFIXES = ("src/storage/wal", "src/mq/queue_manager",
                     "src/pubsub/event_ring", "src/common/metrics",
                     "scripts/analyze_fixtures/atomic_hot")

# Namespace-scope / static-local declarations for the shared-state
# inventory.
GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:extern\s+)?(static\s+)?(thread_local\s+)?(static\s+)?"
    r"(?:inline\s+)?(constexpr\s+|const\s+)?"
    r"([\w:<>,*&\s]+?)\s*[*&]*\s*([A-Za-z_]\w*)\s*(?:=\s*(.*)|\{.*)?$")
SINGLETON_INIT_RE = re.compile(r"new\s+([A-Za-z_]\w*)\s*[({]?")
GLOBAL_SKIP_RE = re.compile(
    r"^\s*(?:using|typedef|namespace|class|struct|enum|template|friend|"
    r"return|delete|throw|if|for|while|switch|extern\s*\"\")\b")

# Lambda introducer closing a scope-opening header, plus the context it
# appears in (assignment target / enclosing call).
LAMBDA_TAIL_RE = re.compile(
    r"\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:->\s*[\w:<>&*\s]+)?$")
LAMBDA_ASSIGN_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*$")
LAMBDA_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\([^()]*$")
# Callee names that suggest the lambda outlives the statement (stored,
# scheduled, or run on another thread).
DEFERRED_CALLEE_RE = re.compile(
    r"Register|Subscribe|Callback|Collector|Post|Spawn|Defer|Schedule|"
    r"Start|[Tt]hread|async|Bind|Listener|OnCommit|Enqueue|emplace|"
    r"push_back")
ESCAPE_ITER_RE_TMPL = r"\b%s\s*\.\s*(begin|end|data|c_str|rbegin|rend)\s*\("


# --------------------------------------------------------------------------
# Builtin frontend: structural scanner
# --------------------------------------------------------------------------


class Scope:
    __slots__ = ("kind", "name", "loop", "acqs", "saved_paren",
                 "lambda_ctx", "pend_len")

    def __init__(self, kind, name=None, loop=False):
        self.kind = kind  # namespace|class|function|block|braceinit
        self.name = name
        self.loop = loop
        self.acqs = []  # lock names acquired in this scope (RAII)
        self.saved_paren = 0  # paren depth of the enclosing scope
        # ("member"|"deferred", detail) when this block is the body of a
        # by-ref/this-capturing lambda that outlives its statement.
        self.lambda_ctx = None
        # Pending-text length at braceinit open, so the init body can be
        # replaced by a plain `=0` on close and the declaration parses.
        self.pend_len = 0


ORDER_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
              "acq_rel": 3, "seq_cst": 4}


def call_args(text, open_idx):
    """Text inside the parens whose '(' sits at text[open_idx]."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
    return text[open_idx + 1:]


FUNC_TAIL_RE = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+)*\s*"
    r"(?::(?!:).*)?$", re.S)
FUNC_NAME_RE = re.compile(r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*\(")
# operator=/==/()/[]/etc: the symbol breaks FUNC_NAME_RE, and a missed
# function header would let the body parse at namespace scope (where
# assignments look like global declarations to the inventory).
OPERATOR_FUNC_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*::\s*)?(operator\s*(?:\(\s*\)|\[\s*\]|"
    r"[^\s\w(]{1,3}))\s*\(")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:EDADB_\w+\s*(?:\([^)]*\)\s*)?)?([A-Za-z_]\w*)"
    r"[^;()]*$")
PARAM_RE = re.compile(r"([A-Z]\w*)\s*[*&]+\s*(?:const\s+)?([a-z_]\w*)")


class BuiltinFrontend:
    """Clock-domain taint scanner shared by both frontends. The rest of
    the builtin fact extraction lives in builtin_parse_file below (the
    scope/brace scanner reads better as one closure-heavy function)."""

    def __init__(self, model):
        self.model = model

    def _clock_stmt(self, stmt, line, taint, func):
        """Taints locals from raw clock reads and flags raw arithmetic /
        cross-domain mixes. Typed reads (WallNow/SteadyNow/FromMicros)
        produce compiler-enforced values and taint nothing."""
        terms = {}  # name -> domain for raw terms present in this stmt
        for m in re.finditer(r"([A-Za-z_]\w*)\s*\(", stmt):
            if m.group(1) == "NowMicros":
                pre = stmt[:m.start(1)]
                if pre.rstrip().endswith("Steady"):
                    continue  # matched inside SteadyNowMicros
                terms["NowMicros()"] = "wall"
            elif m.group(1) == "SteadyNowMicros":
                terms["SteadyNowMicros()"] = "steady"
        for m in re.finditer(r"\b([A-Za-z_]\w*)\b", stmt):
            dom = taint.get(m.group(1))
            if dom:
                terms[m.group(1)] = dom

        # Propagate taint through plain assignments/initializations.
        am = ASSIGN_RE.search(stmt)
        if am:
            target = am.group(1)
            rhs_terms = {t: d for t, d in terms.items() if t != target}
            doms = set(rhs_terms.values())
            if len(doms) == 1:
                taint[target] = doms.pop()
            elif not doms:
                taint.pop(target, None)

        if not terms:
            return
        doms = set(terms.values())
        ops = re.sub(r"->|<<|>>|::|==|!=|<[A-Za-z_][\w:<>,\s]*>", " ", stmt)
        has_arith = re.search(r"[+\-<>]", ops) is not None
        if len(doms) > 1:
            func.clock_uses.append(ClockUse(
                "cross-mix", line, tuple(sorted(terms))))
        elif has_arith:
            func.clock_uses.append(ClockUse(
                "raw-arith", line, tuple(sorted(terms))))


# The closure-heavy scanner above is clearer written as a free function;
# BuiltinFrontend delegates here.


def builtin_parse_file(model, path, rel, phase="both"):
    """Scans one file. `phase` exists because lock resolution needs the
    complete class picture (an inline method body may precede the mutex
    declaration it locks, and .cc files may use classes declared in
    headers parsed later): callers run a "decls" pass over every file to
    register classes/mutexes/fields/methods, then a "facts" pass to
    extract function facts against the finished declarations. "both"
    remains for single-file uses that only need clock taint."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().split("\n")
    except OSError as e:
        print(f"analyze.py: cannot read {rel}: {e}", file=sys.stderr)
        return
    code_lines = strip_code(raw_lines)
    fe = BuiltinFrontend(model)

    stack = []
    pending = []
    pending_line = [1]
    state = {"func": None, "taint": {}, "locals": {}}

    def current_class():
        for sc in reversed(stack):
            if sc.kind == "class":
                return sc.name
        return None

    def enclosing_func():
        return state["func"]

    def held_locks():
        return tuple(l for sc in stack for l in sc.acqs)

    def in_loop():
        for sc in reversed(stack):
            if sc.kind == "function":
                return False
            if sc.loop:
                return True
        return False

    def resolve_lock(expr):
        parts = re.split(r"->|\.", expr)
        field = parts[-1].strip()
        cls = None
        if len(parts) == 1 or parts[0].strip() in ("this", ""):
            cls = current_class()
            if cls is None and enclosing_func() is not None:
                cls = enclosing_func().cls
        else:
            recv = parts[0].strip()
            f = enclosing_func()
            if f is not None:
                cls = f.params.get(recv) or state["locals"].get(recv)
            if cls is None:
                owner = model.classes.get(current_class() or
                                          (f.cls if f else None))
                if owner is not None:
                    cls = owner.field_types.get(recv)
        info = model.classes.get(cls) if cls else None
        if info is not None and field in info.mutexes:
            return info.mutexes[field]
        return None

    def lambda_ctx():
        """Innermost stored/deferred lambda context, if any, without
        crossing a function boundary."""
        for sc in reversed(stack):
            if sc.kind == "function":
                return None
            if sc.kind == "block" and sc.lambda_ctx is not None:
                return sc.lambda_ctx
        return None

    def detect_lambda_ctx(header):
        """Classifies the lambda whose body this block header opens:
        capture list + where the closure goes. Only by-ref / this /
        default captures that are stored into a member or handed to a
        deferred-sounding callee count as escape contexts."""
        lam = LAMBDA_TAIL_RE.search(header)
        if lam is None or "[" not in header:
            return None
        caps = lam.group(1)
        if not ("&" in caps or "this" in caps or "=" in caps):
            return None
        pre2 = header[:lam.start()]
        am = LAMBDA_ASSIGN_RE.search(pre2)
        f = enclosing_func()
        owner = model.classes.get(f.cls) if f is not None and f.cls else None
        if am is not None:
            lhs = am.group(1)
            if owner is not None and (lhs in owner.field_types or
                                      any(lhs == fn for fn, _l, _g, _e
                                          in owner.fields)):
                return ("member", lhs)
            return None
        cm = LAMBDA_CALL_RE.search(pre2)
        if cm is not None and DEFERRED_CALLEE_RE.search(cm.group(1)):
            return ("deferred", cm.group(1))
        return None

    def resolve_atomic_var(base, f):
        """Stable identity for an atomic operand: own-class field,
        unique field of another class, static local, global, else a
        function-local key."""
        cls_name = f.cls or current_class()
        info = model.classes.get(cls_name) if cls_name else None
        if info is not None and (base in info.atomics or
                                 base in info.field_types or
                                 any(base == fn for fn, _l, _g, _e
                                     in info.fields)):
            return f"{cls_name}::{base}"
        if base in f.statics:
            return f.statics[base]
        if "::" + base in model.globals:
            return "::" + base
        owners = [c.name for c in model.classes.values()
                  if base in c.atomics]
        if len(owners) == 1:
            return f"{owners[0]}::{base}"
        return f"{f.qual}::{base}"

    def atomic_stmt(stmt, line, f):
        """Records every atomic operation site with its ordering."""
        rewritten = ATOMIC_REF_RE.sub(r"\1", stmt)
        for m in ATOMIC_OP_RE.finditer(rewritten):
            recv, op_name = m.group(1), m.group(2)
            base = re.split(r"::|\.|->", recv)[-1].strip()
            if not base:
                continue
            args = call_args(rewritten, m.end() - 1)
            orders = MEM_ORDER_RE.findall(args)
            if not orders and "memory_order" in args:
                continue  # e.g. a shim forwarding an order parameter
            # compare_exchange may carry success+failure orders; the
            # WEAKEST one mentioned is the hazard side.
            order = (min(orders, key=lambda o: ORDER_RANK[o])
                     if orders else "seq_cst")
            kind = ("load" if op_name == "load" else
                    "store" if op_name == "store" else
                    "cas" if op_name.startswith("compare_exchange") else
                    "exchange" if op_name == "exchange" else "rmw")
            pre = rewritten[:m.start()].rstrip()
            used = not (pre == "" or pre.endswith((";", "{", "}")))
            var = resolve_atomic_var(base, f)
            f.atomic_ops.append(AtomicOp(var, kind, order, bool(orders),
                                         used, pending_rel[0], line))

    def parse_global_stmt(stmt, line, scope_qual=None):
        """Registers a namespace-scope global or (scope_qual set) a
        function-static local in the shared-state inventory."""
        s = stmt.strip()
        if not s or GLOBAL_SKIP_RE.match(s):
            return
        if s.startswith("extern") and "=" not in s:
            return  # declaration; the defining TU registers it
        m = GLOBAL_DECL_RE.match(s)
        if m is None and ATOMIC_DECL_RE.search(s):
            # Paren-initialized atomic: `static std::atomic<bool> f(x);`
            m = re.match(
                r"^\s*(static\s+)?(thread_local\s+)?(static\s+)?"
                r"(constexpr\s+|const\s+)?([\w:<>,*&\s]+?)\s+"
                r"([A-Za-z_]\w*)\s*\(.*\)\s*$", s)
        if m is None:
            return
        name = m.group(6)
        ttext = ((m.group(4) or "") + m.group(5)).strip()
        if not ttext or name in CPP_KEYWORDS:
            return
        if scope_qual is None and "(" in s and \
                not ATOMIC_DECL_RE.search(s) and m.group(7) is None:
            return  # namespace-scope function declaration, not a variable
        init = s[m.end(6):]
        thread_local = m.group(2) is not None
        key = (scope_qual + "::" + name) if scope_qual else "::" + name
        if thread_local:
            kind, pointee = "thread-local", None
        elif ATOMIC_DECL_RE.search(ttext):
            kind, pointee = "atomic", None
        elif re.search(r"\b(?:Recursive)?Mutex\b|\bstd\s*::\s*"
                       r"(?:recursive_)?mutex\b", ttext):
            kind, pointee = "mutex", None
        elif re.search(r"[*&]\s*const$", ttext) or (
                re.match(r"^(?:constexpr|const)\b", ttext) and
                "*" not in ttext):
            kind, pointee = "const", None
        else:
            sm = SINGLETON_INIT_RE.search(init)
            if sm is not None and "*" in ttext:
                kind, pointee = "singleton", sm.group(1)
            else:
                kind, pointee = "plain", None
        model.globals.setdefault(key, GlobalInfo(
            key, pending_rel[0], line, ttext, kind, pointee, scope_qual))
        return key

    def guarded_stmt_facts(stmt, line, f):
        """Field-touch inventory plus guarded-field escape detection."""
        info = model.classes.get(f.cls) if f.cls else None
        if info is None:
            return
        field_names = {fn for fn, _l, _g, _e in info.fields}
        field_names |= set(info.field_types) | set(info.mutexes)
        touched_guarded = []
        for m in re.finditer(r"[A-Za-z_]\w*", stmt):
            w = m.group(0)
            if w in field_names:
                f.field_uses.add(w)
                if w in info.guarded and w not in touched_guarded:
                    touched_guarded.append(w)
        if not touched_guarded:
            return
        s = " ".join(stmt.split())
        ctx = lambda_ctx()
        for g in touched_guarded:
            addr_of = re.search(r"&\s*(?:this\s*->\s*)?%s\b" % g, s)
            iter_of = re.search(ESCAPE_ITER_RE_TMPL % g, s)
            if s.startswith("return"):
                if addr_of or iter_of:
                    f.escapes.append(EscapeUse(f.cls, g, "return-ref",
                                               line, s[:100]))
                elif f.returns_ref and re.search(
                        r"return\s+(?:this\s*->\s*)?%s\s*(?:;|$|\[)" % g, s):
                    f.escapes.append(EscapeUse(f.cls, g, "return-ref",
                                               line, s[:100]))
            else:
                am = re.match(r"^(?:this\s*->\s*)?([A-Za-z_]\w*)\s*=[^=]", s)
                if am is not None and am.group(1) != g and \
                        am.group(1) in field_names and (addr_of or iter_of):
                    f.escapes.append(EscapeUse(f.cls, g, "member-store",
                                               line, s[:100]))
            if ctx is not None:
                f.escapes.append(EscapeUse(
                    f.cls, g, "lambda", line,
                    f"{ctx[0]} {ctx[1]}: {s[:80]}"))

    def class_member_stmt(stmt, line, raw_line):
        """A `;`-terminated declaration at class depth: field or method."""
        cls = model.classes.get(current_class())
        if cls is None:
            return
        gm = GUARD_ANNOT_RE.search(stmt)
        guarded = gm is not None
        clean = GUARD_ANNOT_RE.sub(" ", stmt)
        clean = re.sub(r"EDADB_\w+(\s*\([^)]*\))?", " ", clean).strip()
        if not clean:
            return
        mm = MUTEX_DECL_RE.search(raw_line)
        if mm:
            name = mm.group(3) or f"{cls.name}::{mm.group(2)}"
            cls.mutexes[mm.group(2)] = name
            cls.field_types[mm.group(2)] = mm.group(1)
            return
        if "(" in clean:
            fm = FUNC_NAME_RE.search(clean)
            if fm and fm.group(2) not in CPP_KEYWORDS:
                cls.methods.add(fm.group(2))
            return
        if re.match(r"^(?:using|typedef|friend|enum|static)\b", clean):
            return
        for rx in FIELD_TYPE_RES:
            tm = rx.search(clean + ";")
            if tm:
                cls.field_types.setdefault(tm.group(2), tm.group(1))
                break
        dm = re.match(r"^(.*?)([A-Za-z_]\w*)\s*(?:=[^;]*)?$", clean.rstrip())
        if not dm:
            return
        ftype, fname = dm.group(1).strip(), dm.group(2)
        if not ftype or not fname:
            return
        if re.search(r"\bstd\s*::\s*(?:recursive_)?mutex\b", ftype):
            cls.has_raw_mutex = True
        exempt = None
        if "CondVar" in ftype:
            exempt = "condvar"
        elif ATOMIC_DECL_RE.search(ftype):
            # Exempt from the ANNOTATION ratchet only; every atomic is
            # classified by check_atomic_ordering and inventoried in the
            # shard map (no blanket analysis exemption).
            exempt = "atomic"
            cls.atomics[fname] = line
        elif re.search(r"[*&]\s*const$", ftype):
            exempt = "const"  # T* const: never reseated.
        elif re.match(r"^(?:mutable\s+)?const\b", ftype) and \
                "*" not in ftype:
            # `const T` is immutable; `const T*` is a RESEATABLE pointer
            # to const and stays in the ratchet.
            exempt = "const"
        if guarded:
            cls.guarded[fname] = gm.group(1)
        cls.fields.append((fname, line, guarded, exempt))

    def start_function(header, line):
        header = re.sub(r"EDADB_\w+(\s*\([^)]*\))?", " ", header)
        fm = OPERATOR_FUNC_RE.search(header)
        if fm is None:
            for m in FUNC_NAME_RE.finditer(header):
                if m.group(2) in CPP_KEYWORDS:
                    continue
                fm = m
                break
        if fm is None:
            return None
        cls = fm.group(1) or current_class()
        name = re.sub(r"\s+", "", fm.group(2))
        qual = f"{cls}::{name}" if cls else name
        f = FunctionInfo(qual, cls, pending_rel[0], line)
        f.returns_ref = header[:fm.start()].rstrip().endswith(("&", "*"))
        sig = header[fm.end():]
        for pm in PARAM_RE.finditer(sig):
            f.params[pm.group(2)] = pm.group(1)
        # Definitions with bodies win over forward decls.
        model.functions[qual] = f
        if cls:
            c = model.get_class(cls, pending_rel[0], line)
            c.methods.add(name)
        return f

    def process_stmt(stmt, line, raw_line):
        f = enclosing_func()
        if f is None:
            if current_class() is not None:
                if phase != "facts":
                    class_member_stmt(stmt, line, raw_line)
            elif phase != "facts":
                parse_global_stmt(stmt, line)
            return
        if phase == "decls":
            return
        if not stmt.strip():
            return
        if re.match(r"^\s*static\b", stmt):
            key = parse_global_stmt(stmt, line, scope_qual=f.qual)
            if key is not None:
                f.statics[key.rsplit("::", 1)[-1]] = key
        for m in PARAM_RE.finditer(stmt):
            state["locals"].setdefault(m.group(2), m.group(1))

        acq = ACQUIRE_RE.search(stmt)
        if acq:
            lock = resolve_lock(acq.group(2))
            if lock is not None:
                for h in held_locks():
                    f.lock_edges.append((h, lock, line))
                f.acquires.append((lock, line))
                if stack:
                    stack[-1].acqs.append(lock)

        for m in re.finditer(r"([\w.>\-]+?)\s*\.\s*Lock\s*\(\s*\)", stmt):
            lock = resolve_lock(m.group(1))
            if lock is not None:
                for h in held_locks():
                    f.lock_edges.append((h, lock, line))
                f.acquires.append((lock, line))
                for sc in reversed(stack):
                    if sc.kind == "function":
                        sc.acqs.append(lock)
                        break
        for m in re.finditer(r"([\w.>\-]+?)\s*\.\s*Unlock\s*\(\s*\)", stmt):
            lock = resolve_lock(m.group(1))
            if lock is not None:
                for sc in reversed(stack):
                    if lock in sc.acqs:
                        sc.acqs.remove(lock)
                        break

        held = held_locks()
        for m in CV_WAIT_RE.finditer(stmt):
            waited = resolve_lock(m.group(3))
            f.blocks.append(BlockOp("cv-wait", line, held, in_loop(),
                                    waited_lock=waited))
        for m in RAW_BLOCK_RE.finditer(stmt):
            f.blocks.append(BlockOp(BLOCKING_PRIMS[m.group(1)], line, held,
                                    in_loop()))
        for m in SLEEP_RE.finditer(stmt):
            f.blocks.append(BlockOp(BLOCKING_PRIMS[m.group(1)], line, held,
                                    in_loop()))

        for m in CALL_RE.finditer(stmt):
            recv, op, name = m.group(1), m.group(2), m.group(3)
            if name in CPP_KEYWORDS or name.startswith(CALL_SKIP_PREFIXES):
                continue
            if name in ("Lock", "Unlock", "MutexLock", "RecursiveMutexLock",
                        "Wait", "WaitForMicros", "Signal", "SignalAll"):
                continue
            if recv in ("std", "chrono", "this_thread"):
                continue
            f.calls.append(CallSite(recv, op, name, line, held))

        atomic_stmt(stmt, line, f)
        guarded_stmt_facts(stmt, line, f)
        fe._clock_stmt(stmt, line, state["taint"], f)

    pending_rel = [rel]
    has_content = [False]
    # Parenthesis depth of the current statement: a `;` inside parens
    # (for-loop headers, argument lists split by macros) does not end a
    # statement. Each scope snapshots and resets the depth so lambda
    # bodies inside call arguments still terminate statements normally.
    paren = [0]

    def clear_pending():
        pending.clear()
        has_content[0] = False

    for lineno, code in enumerate(code_lines, start=1):
        # Preprocessor lines neither open scopes nor end statements.
        if code.lstrip().startswith("#"):
            continue
        i, n = 0, len(code)
        while i < n:
            c = code[i]
            if c == "(":
                paren[0] += 1
            elif c == ")":
                paren[0] = max(0, paren[0] - 1)
            if c == "{":
                header = "".join(pending).strip()
                start = pending_line[0] if has_content[0] else lineno
                sc = None
                if re.match(r"^(?:inline\s+)?namespace\b", header):
                    sc = Scope("namespace")
                elif re.search(r"\benum\b", header) and "(" not in header:
                    sc = Scope("block")  # enumerators are not fields
                elif enclosing_func() is None and "(" not in header and \
                        CLASS_HEAD_RE.search(header) and \
                        not re.search(r"\benum\b", header):
                    cm = CLASS_HEAD_RE.search(header)
                    model.get_class(cm.group(1), rel, start)
                    sc = Scope("class", cm.group(1))
                elif enclosing_func() is None and "(" in header and \
                        FUNC_TAIL_RE.search(header):
                    f = start_function(header, start)
                    if f is not None:
                        sc = Scope("function", f.qual)
                        state["func"] = f
                        state["taint"] = {}
                        state["locals"] = {}
                    else:
                        sc = Scope("block")
                elif enclosing_func() is not None:
                    loop = re.search(r"\b(?:while|for)\s*\(", header) is not \
                        None or re.match(r"^do\b", header) is not None or \
                        header.endswith("do")
                    # Lambdas / plain blocks just nest.
                    sc = Scope("block", loop=loop)
                    sc.lambda_ctx = detect_lambda_ctx(header)
                    # Control-flow headers never reach process_stmt (no
                    # terminating ';'), but their conditions carry
                    # atomic ops (`while (running_.load(...))`) and
                    # field touches the audit must see.
                    if phase != "decls" and header:
                        atomic_stmt(header, start, enclosing_func())
                        guarded_stmt_facts(header, start, enclosing_func())
                elif current_class() is not None and header:
                    # Brace-initialized member (`Mutex mu_{"..."};`): keep
                    # the declaration text alive until its semicolon.
                    sc = Scope("braceinit")
                elif header and re.search(
                        r"[\w>]\s+[A-Za-z_]\w*(?:\s*\[[^\]]*\])?"
                        r"\s*=?\s*$", header):
                    # Brace-initialized namespace-scope variable
                    # (`std::atomic<int> g_x{0};`): same treatment, so
                    # the global registers with its full declaration.
                    sc = Scope("braceinit")
                else:
                    sc = Scope("block")
                if sc.kind != "braceinit":
                    clear_pending()
                else:
                    sc.pend_len = len(pending)
                sc.saved_paren = paren[0]
                paren[0] = 0
                stack.append(sc)
                i += 1
                continue
            if c == "}":
                if stack and stack[-1].kind == "braceinit":
                    sc = stack.pop()
                    paren[0] = sc.saved_paren
                    # Replace the brace-init body with `=0` so the
                    # declaration parses as `T name = 0;` downstream.
                    del pending[sc.pend_len:]
                    pending.append("=0")
                    i += 1
                    continue
                if stack:
                    sc = stack.pop()
                    paren[0] = sc.saved_paren
                    if sc.kind == "function":
                        state["func"] = None
                        state["taint"] = {}
                        state["locals"] = {}
                clear_pending()
                i += 1
                continue
            if c == ";" and paren[0] == 0:
                stmt = "".join(pending)
                anchor = pending_line[0] if has_content[0] else lineno
                raw = raw_lines[anchor - 1] if anchor - 1 < len(raw_lines) \
                    else ""
                process_stmt(stmt, anchor, raw)
                clear_pending()
                i += 1
                continue
            # Access labels end the pending text; otherwise the first
            # member after `private:` would merge with the label and its
            # raw-line anchor would point at the label line (which is
            # what MUTEX_DECL_RE searches for the registered lock name).
            if c == ":" and paren[0] == 0 and \
                    "".join(pending).strip() in ("public", "private",
                                                 "protected"):
                clear_pending()
                i += 1
                continue
            if not has_content[0] and not c.isspace():
                pending_line[0] = lineno
                has_content[0] = True
            pending.append(c)
            i += 1
        pending.append(" ")


# --------------------------------------------------------------------------
# Clang JSON-AST frontend
# --------------------------------------------------------------------------


class ClangFrontend:
    """Extracts the same fact model from `clang++ -fsyntax-only -Xclang
    -ast-dump=json` output, one TU at a time from compile_commands.json.
    No libclang required. Untested on machines without clang++ (the
    builtin frontend is the gate there); self-test covers it wherever a
    working clang++ exists."""

    def __init__(self, model, clangxx):
        self.model = model
        self.clangxx = clangxx

    def parse_compile_commands(self, path, only_src=True):
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
        seen = set()
        for entry in entries:
            src = os.path.normpath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            rel = os.path.relpath(src, REPO_ROOT).replace(os.sep, "/")
            if only_src and not rel.startswith("src/"):
                continue
            if src in seen:
                continue
            seen.add(src)
            args = entry.get("arguments")
            if not args:
                args = entry.get("command", "").split()
            self.parse_tu(src, rel, args)

    def parse_tu(self, src, rel, args):
        cmd = [self.clangxx]
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c"):
                skip_next = a == "-o"
                continue
            if a == src or a.endswith(rel):
                continue
            cmd.append(a)
        cmd += ["-fsyntax-only", "-Xclang", "-ast-dump=json", src]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=300)
            ast = json.loads(proc.stdout)
        except Exception as e:  # noqa: BLE001 - report and continue
            print(f"analyze.py: clang frontend failed on {rel}: {e}",
                  file=sys.stderr)
            return
        self._walk_top(ast, rel)
        # Clock taint, atomic orderings, escapes and the global
        # inventory stay textual even in clang mode: macro annotations
        # and memory_order arguments read clearer from source, and the
        # heuristics are textual by nature. Reuse the builtin scanner.
        builtin_textual_facts(self.model, src, rel)

    # -- helpers -----------------------------------------------------------

    def _loc_line(self, node):
        loc = node.get("loc") or {}
        return loc.get("line") or (loc.get("expansionLoc") or {}).get(
            "line") or 0

    def _walk_top(self, node, rel, cls=None):
        kind = node.get("kind")
        if kind == "CXXRecordDecl" and node.get("completeDefinition"):
            name = node.get("name")
            if name:
                info = self.model.get_class(name, rel, self._loc_line(node))
                self._fields(node, info)
                cls = name
        if kind in ("CXXMethodDecl", "CXXConstructorDecl", "FunctionDecl"):
            body = [i for i in node.get("inner", [])
                    if i.get("kind") == "CompoundStmt"]
            if body:
                name = node.get("name", "")
                qual = f"{cls}::{name}" if cls else name
                f = FunctionInfo(qual, cls, rel, self._loc_line(node))
                self.model.functions[qual] = f
                self._walk_body(body[0], f, held=[], loop=False)
                return
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._walk_top(child, rel, cls)

    def _fields(self, node, info):
        for child in node.get("inner", []) or []:
            if child.get("kind") != "FieldDecl":
                continue
            fname = child.get("name")
            ftype = (child.get("type") or {}).get("qualType", "")
            line = self._loc_line(child)
            if fname is None:
                continue
            base = re.sub(r"^(?:const\s+)?(?:std::(?:unique|shared)_ptr<)?"
                          r"([A-Za-z_][\w:]*).*$", r"\1", ftype)
            base = base.split("::")[-1]
            info.field_types.setdefault(fname, base)
            if re.search(r"\b(?:Recursive)?Mutex\b", ftype):
                # Registered name needs the initializer string literal.
                lit = self._find_string_literal(child)
                info.mutexes[fname] = lit or f"{info.name}::{fname}"
                continue
            guarded = any("guarded" in (c.get("kind") or "").lower()
                          for c in child.get("inner", []) or [])
            exempt = None
            if "CondVar" in ftype:
                exempt = "condvar"
            elif "atomic" in ftype:
                exempt = "atomic"
            elif ftype.startswith("const "):
                exempt = "const"
            info.fields.append((fname, line, guarded, exempt))

    def _find_string_literal(self, node):
        if node.get("kind") == "StringLiteral":
            v = node.get("value", "")
            return v.strip('"')
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                got = self._find_string_literal(child)
                if got:
                    return got
        return None

    def _walk_body(self, node, f, held, loop):
        kind = node.get("kind", "")
        if kind in ("WhileStmt", "DoStmt", "ForStmt", "CXXForRangeStmt"):
            loop = True
        if kind == "CXXConstructExpr":
            ctype = (node.get("type") or {}).get("qualType", "")
            if "MutexLock" in ctype:
                lock = self._member_lock(node, f)
                if lock:
                    for h in held:
                        f.lock_edges.append((h, lock, self._loc_line(node)))
                    f.acquires.append((lock, self._loc_line(node)))
                    held = held + [lock]
        if kind in ("CallExpr", "CXXMemberCallExpr"):
            cal = self._callee(node)
            if cal:
                recv, name = cal
                line = self._loc_line(node)
                if name in ("Wait", "WaitForMicros"):
                    waited = self._member_lock(node, f)
                    f.blocks.append(BlockOp("cv-wait", line, tuple(held),
                                            loop, waited_lock=waited))
                elif name in BLOCKING_PRIMS:
                    f.blocks.append(BlockOp(BLOCKING_PRIMS[name], line,
                                            tuple(held), loop))
                elif not name.startswith(CALL_SKIP_PREFIXES):
                    f.calls.append(CallSite(recv, "->", name, line,
                                            tuple(held)))
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._walk_body(child, f, held, loop)

    def _callee(self, node):
        def first_member_or_ref(n):
            k = n.get("kind")
            if k == "MemberExpr":
                return (self._recv_name(n), n.get("name"))
            if k == "DeclRefExpr":
                ref = (n.get("referencedDecl") or {}).get("name")
                return (None, ref) if ref else None
            for c in n.get("inner", []) or []:
                if isinstance(c, dict):
                    got = first_member_or_ref(c)
                    if got:
                        return got
            return None
        inner = node.get("inner", []) or []
        if not inner:
            return None
        got = first_member_or_ref(inner[0])
        if got and got[1]:
            return got
        return None

    def _recv_name(self, member_expr):
        for c in member_expr.get("inner", []) or []:
            if isinstance(c, dict):
                if c.get("kind") == "MemberExpr":
                    return c.get("name")
                if c.get("kind") == "DeclRefExpr":
                    return (c.get("referencedDecl") or {}).get("name")
                got = self._recv_name(c)
                if got:
                    return got
        return None

    def _member_lock(self, node, f):
        def find_member(n):
            if n.get("kind") == "MemberExpr":
                return n.get("name")
            for c in n.get("inner", []) or []:
                if isinstance(c, dict):
                    got = find_member(c)
                    if got:
                        return got
            return None
        field = find_member(node)
        if field is None:
            return None
        info = self.model.classes.get(f.cls) if f.cls else None
        if info and field in info.mutexes:
            return info.mutexes[field]
        for info in self.model.classes.values():
            if field in info.mutexes:
                return info.mutexes[field]
        return None


def builtin_textual_facts(model, path, rel):
    """Merges the textual-by-nature facts from the builtin scanner into a
    clang-frontend model: clock-domain taint, atomic-ordering sites,
    guarded-field escapes/touches, the global/static inventory, and the
    guarded/atomic field maps (the JSON AST drops macro annotations and
    memory_order arguments are clearer read from source). The clang
    frontend handles calls/locks/waits from the AST."""
    sub = Model()
    builtin_parse_file(sub, path, rel)
    for qual, f in sub.functions.items():
        if not (f.clock_uses or f.atomic_ops or f.escapes or f.field_uses
                or f.statics):
            continue
        tgt = model.functions.setdefault(qual, FunctionInfo(
            qual, f.cls, f.file, f.line))
        tgt.clock_uses.extend(f.clock_uses)
        tgt.atomic_ops.extend(f.atomic_ops)
        tgt.escapes.extend(f.escapes)
        tgt.field_uses |= f.field_uses
        tgt.returns_ref = tgt.returns_ref or f.returns_ref
        tgt.statics.update(f.statics)
    for key, g in sub.globals.items():
        model.globals.setdefault(key, g)
    for name, c in sub.classes.items():
        tgt = model.classes.get(name)
        if tgt is None:
            continue
        tgt.guarded.update(c.guarded)
        for fn, ln in c.atomics.items():
            tgt.atomics.setdefault(fn, ln)
        tgt.has_raw_mutex = tgt.has_raw_mutex or c.has_raw_mutex


# --------------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------------


class Analyzer:
    MAX_CHAIN = 12

    def __init__(self, model):
        self.model = model
        self.call_graph = self._resolve_calls()
        self.may_acquire = self._closure(
            {q: {l for l, _ in f.acquires} for q, f in model.functions.items()})
        self.may_block = self._closure(
            {q: {b.prim for b in f.blocks}
             for q, f in model.functions.items()})

    # -- call resolution ---------------------------------------------------

    def _resolve_calls(self):
        """qual -> list of (callee_qual, line, held). Conservative: a call
        that cannot be attributed to exactly one known function resolves
        to nothing."""
        by_name = defaultdict(set)
        for qual in self.model.functions:
            by_name[qual.split("::")[-1]].add(qual)
        graph = defaultdict(list)
        for qual, f in self.model.functions.items():
            owner = self.model.classes.get(f.cls) if f.cls else None
            for call in f.calls:
                callee = None
                if call.op == "::" and call.receiver:
                    cand = f"{call.receiver}::{call.name}"
                    if cand in self.model.functions:
                        callee = cand
                elif call.receiver in (None, "this"):
                    if owner is not None and call.name in owner.methods:
                        cand = f"{f.cls}::{call.name}"
                        if cand in self.model.functions:
                            callee = cand
                    if callee is None and len(by_name[call.name]) == 1:
                        only = next(iter(by_name[call.name]))
                        if "::" not in only:
                            callee = only
                else:
                    cls = f.params.get(call.receiver)
                    if cls is None and owner is not None:
                        cls = owner.field_types.get(call.receiver)
                    if cls is not None:
                        cand = f"{cls}::{call.name}"
                        if cand in self.model.functions:
                            callee = cand
                if callee is not None:
                    graph[qual].append((callee, call.line, call.held))
        return graph

    def _closure(self, direct):
        """Transitive closure over the call graph: qual -> {item: chain}
        where chain is the function path that reaches the item."""
        out = {}
        for qual in self.model.functions:
            seeds = set(direct.get(qual) or set())
            out[qual] = {item: [qual] for item in seeds}
        changed = True
        rounds = 0
        while changed and rounds < self.MAX_CHAIN:
            changed = False
            rounds += 1
            for qual in self.model.functions:
                mine = out[qual]
                for callee, _line, _held in self.call_graph.get(qual, ()):
                    for item, chain in out.get(callee, {}).items():
                        if item not in mine and len(chain) < self.MAX_CHAIN:
                            mine[item] = [qual] + chain
                            changed = True
        return out

    # -- individual checks -------------------------------------------------

    def check_lock_order(self):
        edges = {}  # (A, B) -> (file, line, evidence)
        for qual, f in self.model.functions.items():
            for a, b, line in f.lock_edges:
                edges.setdefault((a, b), (f.file, line,
                                          f"{qual} acquires {b} while "
                                          f"holding {a}"))
            for callee, line, held in self.call_graph.get(qual, ()):
                for lock, chain in self.may_acquire.get(callee, {}).items():
                    for a in held:
                        if (a, lock) not in edges:
                            path = " -> ".join(chain)
                            edges[(a, lock)] = (
                                f.file, line,
                                f"{qual} holds {a} and calls {path}, "
                                f"which acquires {lock}")
        findings = []
        graph = defaultdict(set)
        for (a, b) in edges:
            if a != b:
                graph[a].add(b)
        # Self-edges on non-recursive locks are immediate deadlocks.
        rec_names = set()
        for c in self.model.classes.values():
            for fld, name in c.mutexes.items():
                if fld in c.field_types and "Recursive" in \
                        c.field_types.get(fld, ""):
                    rec_names.add(name)
        for (a, b), (file, line, ev) in sorted(edges.items()):
            if a == b and a not in rec_names:
                findings.append(Finding(
                    "lock-order", f"{a}->{a}", file, line,
                    f"re-acquisition of non-recursive {a} (self-deadlock)",
                    [ev]))
        # Cycles: DFS over the edge graph, canonicalized by rotation.
        seen_cycles = set()
        for start in sorted(graph):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(graph.get(node, ())):
                    if nxt == start and len(path) > 1:
                        cyc = self._canon_cycle(path)
                        if cyc in seen_cycles:
                            continue
                        seen_cycles.add(cyc)
                        ev, anchor = [], None
                        for i, a in enumerate(cyc):
                            b = cyc[(i + 1) % len(cyc)]
                            file, line, e = edges[(a, b)]
                            ev.append(e)
                            if anchor is None or (file, line) < anchor:
                                anchor = (file, line)
                        key = "->".join(cyc + (cyc[0],))
                        findings.append(Finding(
                            "lock-order", key, anchor[0], anchor[1],
                            f"lock-order cycle: {key}", ev))
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))
        return findings

    @staticmethod
    def _canon_cycle(path):
        k = path.index(min(path))
        return tuple(path[k:] + path[:k])

    def check_wait_under_lock(self):
        found = {}  # (lock, prim) -> Finding (keep lexicographically first)
        for qual, f in sorted(self.model.functions.items()):
            for b in f.blocks:
                if b.prim == "cv-wait":
                    foreign = [h for h in b.held if h != b.waited_lock]
                    for lock in foreign:
                        self._record_wait(found, lock, "cv-wait", f.file,
                                          b.line,
                                          f"{qual} holds {lock} while "
                                          f"waiting on a different mutex",
                                          [])
                    continue
                for lock in b.held:
                    self._record_wait(found, lock, b.prim, f.file, b.line,
                                      f"{qual} holds {lock} across "
                                      f"{b.prim}", [])
            for callee, line, held in self.call_graph.get(qual, ()):
                if not held:
                    continue
                for prim, chain in self.may_block.get(callee, {}).items():
                    for lock in held:
                        path = " -> ".join([qual] + chain)
                        self._record_wait(
                            found, lock, prim, f.file, line,
                            f"{qual} holds {lock} and calls into {prim} "
                            f"(path: {path})", [])
        return list(found.values())

    @staticmethod
    def _record_wait(found, lock, prim, file, line, msg, ev):
        key = (lock, prim)
        cand = Finding("wait-under-lock", f"{lock}|{prim}", file, line, msg,
                       ev)
        prev = found.get(key)
        if prev is None or (cand.file, cand.line) < (prev.file, prev.line):
            found[key] = cand

    def check_cv_loops(self):
        findings = []
        for qual, f in sorted(self.model.functions.items()):
            for b in f.blocks:
                if b.prim == "cv-wait" and not b.in_loop:
                    findings.append(Finding(
                        "cv-wait-no-loop", qual, f.file, b.line,
                        f"{qual}: CondVar wait outside a predicate loop "
                        f"(spurious wakeups / lost-wakeup hazard)"))
        return findings

    def check_clock_domain(self):
        findings = {}
        for qual, f in sorted(self.model.functions.items()):
            for use in f.clock_uses:
                key = f"{qual}|{use.kind}|{','.join(use.terms)}"
                if key in findings:
                    continue
                if use.kind == "cross-mix":
                    msg = (f"{qual}: wall- and steady-domain raw values in "
                           f"one expression ({', '.join(use.terms)})")
                else:
                    msg = (f"{qual}: raw clock read in time arithmetic "
                           f"({', '.join(use.terms)}); use typed "
                           f"Clock::WallNow()/SteadyNow()")
                findings[key] = Finding("clock-domain", key, f.file,
                                        use.line, msg)
        return list(findings.values())

    def check_guarded_by(self):
        findings = []
        for name in sorted(self.model.classes):
            cls = self.model.classes[name]
            if not cls.mutexes:
                continue
            for fname, line, guarded, exempt in cls.fields:
                if guarded or exempt is not None:
                    continue
                if fname in cls.mutexes:
                    continue
                findings.append(Finding(
                    "guarded-by", f"{name}::{fname}", cls.file, line,
                    f"{name}::{fname} in a mutex-owning class has no "
                    f"EDADB_GUARDED_BY annotation"))
        return findings

    def atomic_sites(self):
        """var key -> sorted [AtomicOp] across every function."""
        by_var = defaultdict(list)
        for qual in sorted(self.model.functions):
            for op in self.model.functions[qual].atomic_ops:
                by_var[op.var].append(op)
        for ops in by_var.values():
            ops.sort(key=lambda o: (o.file, o.line, o.op))
        return by_var

    @staticmethod
    def _sites_evidence(ops, limit=6):
        ev = []
        for o in ops[:limit]:
            mark = "" if o.explicit_order else " (defaulted)"
            ev.append(f"{o.file}:{o.line}: {o.op} {o.order}{mark}")
        if len(ops) > limit:
            ev.append(f"... {len(ops) - limit} more site(s)")
        return ev

    def check_atomic_ordering(self):
        findings = []
        for var, ops in sorted(self.atomic_sites().items()):
            # (a) relaxed RMW used for synchronization: any relaxed
            # CAS/exchange, or a relaxed fetch_* whose result feeds
            # further logic (pure counter bumps discard it).
            bad_rmw = [o for o in ops if o.order == "relaxed" and
                       (o.op in ("cas", "exchange") or
                        (o.op == "rmw" and o.used))]
            if bad_rmw:
                o = bad_rmw[0]
                findings.append(Finding(
                    "atomic-ordering", f"{var}|relaxed-rmw", o.file, o.line,
                    f"{var}: relaxed {o.op} with the result used for "
                    f"synchronization-shaped logic (relaxed only orders "
                    f"this variable, nothing it publishes)",
                    self._sites_evidence(bad_rmw)))
            # (b) mixed orderings without an acquire/release pairing:
            # a release-or-stronger write is unobservable through a
            # relaxed load of the same variable (and vice versa).
            strong_write = [o for o in ops
                            if o.op in ("store", "rmw", "cas", "exchange")
                            and ORDER_RANK[o.order] >= 2]
            relaxed_load = [o for o in ops
                            if o.op in ("load", "rmw", "cas", "exchange")
                            and o.order == "relaxed"]
            strong_read = [o for o in ops
                           if o.op in ("load", "rmw", "cas", "exchange")
                           and ORDER_RANK[o.order] >= 2]
            relaxed_store = [o for o in ops
                             if o.op in ("store", "rmw", "cas", "exchange")
                             and o.order == "relaxed"]
            mixed = ((strong_write and relaxed_load) or
                     (strong_read and relaxed_store))
            if mixed:
                sites = sorted(set(strong_write + relaxed_load +
                                   strong_read + relaxed_store),
                               key=lambda o: (o.file, o.line, o.op))
                o = sites[0]
                findings.append(Finding(
                    "atomic-ordering", f"{var}|mixed-ordering", o.file,
                    o.line,
                    f"{var}: release/acquire sites mixed with relaxed "
                    f"sites on the same variable -- the strong side's "
                    f"ordering is invisible through the relaxed side",
                    self._sites_evidence(sites)))
            # (c) defaulted seq_cst on a hot-path file.
            hot = [o for o in ops if not o.explicit_order and
                   o.file.startswith(HOT_PATH_PREFIXES)]
            if hot:
                o = hot[0]
                findings.append(Finding(
                    "atomic-ordering", f"{var}|seq-cst-hot", o.file, o.line,
                    f"{var}: defaulted seq_cst on a hot-path file -- "
                    f"either an unnecessary full fence or an undocumented "
                    f"dependency on one; state the ordering explicitly",
                    self._sites_evidence(hot)))
        return findings

    def _singleton_clean(self, pointee):
        """A static T (or static T* = new T) singleton is clean when T
        serializes its own state (owns a named or raw mutex) or holds
        none (stateless / all-atomic)."""
        info = self.model.classes.get(pointee) if pointee else None
        if info is None:
            return False  # cannot prove anything about the pointee
        if info.mutexes or info.has_raw_mutex:
            return True
        mutable_fields = [fn for fn, _l, _g2, ex in info.fields
                          if ex not in ("const", "atomic", "condvar")]
        return not mutable_fields

    def effective_global(self, g):
        """(kind, pointee) after value-singleton promotion: a `static T
        instance;` of a known class is a singleton OBJECT -- judged by
        T's own locking, not flagged as a plain mutable."""
        if g.kind != "plain" or "*" in g.type or "&" in g.type:
            return g.kind, g.pointee
        for t in reversed(re.findall(r"[A-Za-z_]\w*", g.type)):
            if t in self.model.classes:
                return "singleton", t
        return g.kind, g.pointee

    def check_shared_state(self):
        findings = []
        for key in sorted(self.model.globals):
            g = self.model.globals[key]
            kind, pointee = self.effective_global(g)
            if kind == "singleton" and not self._singleton_clean(pointee):
                what = (f"singleton of {pointee or 'an unknown class'} "
                        f"which owns no mutex")
                findings.append(Finding(
                    "shared-state", key, g.file, g.line,
                    f"{key}: {what}; every accessor races once this "
                    f"runs on more than one shard ({g.type})"))
            elif kind == "plain":
                what = ("function-static local" if g.scope
                        else "namespace-scope global")
                findings.append(Finding(
                    "shared-state", key, g.file, g.line,
                    f"{key}: mutable non-atomic {what} ({g.type}) -- "
                    f"ambient shared state outside every lock domain"))
        return findings

    ESCAPE_MSG = {
        "return-ref": "returned by reference/pointer/iterator from a "
                      "method -- the caller holds storage the lock no "
                      "longer guards",
        "member-store": "stored through another member -- aliases the "
                        "guarded storage outside its critical section",
        "lambda": "captured by a lambda that outlives the critical "
                  "section (stored or handed to a deferred callee)",
    }

    def check_guarded_escape(self):
        found = {}
        for qual in sorted(self.model.functions):
            f = self.model.functions[qual]
            for e in f.escapes:
                key = f"{e.cls}::{e.field}|{e.kind}"
                cand = Finding(
                    "guarded-escape", key, f.file, e.line,
                    f"{e.cls}::{e.field} (guarded) {self.ESCAPE_MSG[e.kind]}",
                    [f"{qual}: {e.detail}"])
                prev = found.get(key)
                if prev is None or (cand.file, cand.line) < (prev.file,
                                                             prev.line):
                    found[key] = cand
        return list(found.values())

    def run(self):
        findings = []
        findings += self.check_lock_order()
        findings += self.check_wait_under_lock()
        findings += self.check_cv_loops()
        findings += self.check_clock_domain()
        findings += self.check_guarded_by()
        findings += self.check_atomic_ordering()
        findings += self.check_shared_state()
        findings += self.check_guarded_escape()
        findings.sort(key=lambda f: (f.file, f.line, f.check, f.key))
        return findings


# --------------------------------------------------------------------------
# Suppression / baseline
# --------------------------------------------------------------------------


def load_entries(path, require_reason):
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("entries", [])
    for e in entries:
        if "check" not in e or "key" not in e:
            raise ValueError(f"{path}: every entry needs check+key: {e}")
        if require_reason and not e.get("reason", "").strip():
            raise ValueError(
                f"{path}: entry {e['check']}|{e['key']} has no reason; "
                "suppressions must carry their justification")
    return entries


def apply_filters(findings, suppressions, baseline):
    """Returns (active, errors). Suppressed/baselined findings drop out;
    stale suppression or baseline entries become errors (shrink-only)."""
    errors = []
    sup_idx = {(e["check"], e["key"]): e for e in suppressions}
    base_idx = {(e["check"], e["key"]): e for e in baseline}
    hit_sup, hit_base = set(), set()
    active = []
    for f in findings:
        k = (f.check, f.key)
        if k in sup_idx:
            hit_sup.add(k)
            continue
        if k in base_idx:
            hit_base.add(k)
            continue
        active.append(f)
    for k in sorted(set(sup_idx) - hit_sup):
        errors.append(f"stale suppression (no such finding): "
                      f"{k[0]}|{k[1]} -- remove it from "
                      f"scripts/analyze_suppress.json")
    for k in sorted(set(base_idx) - hit_base):
        errors.append(f"stale baseline entry (debt paid down): "
                      f"{k[0]}|{k[1]} -- remove it from "
                      f"scripts/analyze_baseline.json (shrink-only ratchet)")
    return active, errors


def write_baseline(findings, suppressions):
    sup_idx = {(e["check"], e["key"]) for e in suppressions}
    entries = [{"check": f.check, "key": f.key}
               for f in findings
               if f.check == "guarded-by" and (f.check, f.key) not in sup_idx]
    entries.sort(key=lambda e: (e["check"], e["key"]))
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        json.dump({
            "comment": "guarded-by annotation debt; shrink-only. Regenerate "
                       "with scripts/analyze.py --write-baseline only after "
                       "paying debt down, never to admit new debt.",
            "entries": entries,
        }, f, indent=2)
        f.write("\n")
    print(f"analyze.py: wrote {len(entries)} baseline entries to "
          f"{os.path.relpath(BASELINE_PATH, REPO_ROOT)}")


# --------------------------------------------------------------------------
# Shard map artifact
# --------------------------------------------------------------------------


def build_shardmap(model, analyzer):
    """The sharding refactor's planning input: every lock domain, atomic,
    global/singleton and cross-domain call edge in src/, as one
    deterministic JSON object (sorted keys, sorted lists, no lines that
    churn on unrelated edits beyond decl lines)."""
    def in_src(rel):
        return rel.startswith("src/")

    domains = []
    for name in sorted(model.classes):
        cls = model.classes[name]
        if not in_src(cls.file) or not (cls.mutexes or cls.atomics):
            continue
        touchers = defaultdict(set)  # field -> method names touching it
        for qual, f in model.functions.items():
            if f.cls != name:
                continue
            method = qual.split("::")[-1]
            for fld in f.field_uses:
                touchers[fld].add(method)
        guarded = {}
        for fld in sorted(cls.guarded):
            mu_field = cls.guarded[fld]
            guarded[fld] = {
                "mutex": cls.mutexes.get(mu_field, f"{name}::{mu_field}"),
                "methods": sorted(touchers.get(fld, ())),
            }
        unguarded = sorted(
            fn for fn, _l, g, ex in cls.fields
            if not g and ex is None and fn not in cls.mutexes)
        domains.append({
            "class": name,
            "file": cls.file,
            "mutexes": sorted(set(cls.mutexes.values())),
            "raw_mutex": cls.has_raw_mutex,
            "atomic_fields": sorted(cls.atomics),
            "guarded_fields": guarded,
            "unguarded_fields": unguarded,
        })

    atomics = []
    for var, ops in sorted(analyzer.atomic_sites().items()):
        src_ops = [o for o in ops if in_src(o.file)]
        if not src_ops:
            continue
        orderings = sorted({
            o.op + ":" + o.order + ("" if o.explicit_order else ":defaulted")
            for o in src_ops})
        atomics.append({
            "var": var,
            "files": sorted({o.file for o in src_ops}),
            "orderings": orderings,
            "sites": len(src_ops),
        })

    globs = []
    for key in sorted(model.globals):
        g = model.globals[key]
        if not in_src(g.file):
            continue
        kind, pointee = analyzer.effective_global(g)
        ent = {"key": key, "kind": kind, "type": g.type, "file": g.file}
        if pointee:
            ent["pointee"] = pointee
        globs.append(ent)

    owners = {n for n, c in model.classes.items()
              if c.mutexes and in_src(c.file)}
    edges = {}
    for qual in sorted(model.functions):
        f = model.functions[qual]
        if f.cls not in owners:
            continue
        for callee, _line, _held in analyzer.call_graph.get(qual, ()):
            cf = model.functions.get(callee)
            if cf is None or not cf.cls or cf.cls == f.cls:
                continue
            if cf.cls in owners:
                edges.setdefault((f.cls, cf.cls), f"{qual} -> {callee}")
    cross = [{"from": a, "to": b, "via": via}
             for (a, b), via in sorted(edges.items())]

    return {
        "comment": "Shared-state shard map over src/ (DESIGN.md section "
                   "12): lock domains (owner class -> mutexes -> guarded "
                   "fields -> touching methods), every atomic with its "
                   "observed orderings, every global/singleton, and "
                   "cross-domain call edges. Regenerate with scripts/"
                   "analyze.py --write-shardmap; CI fails on drift.",
        "schema": "edadb-shardmap-v1",
        "domains": domains,
        "atomics": atomics,
        "globals": globs,
        "cross_domain_edges": cross,
    }


def shardmap_text(model, analyzer):
    return json.dumps(build_shardmap(model, analyzer), indent=2,
                      sort_keys=True) + "\n"


# --------------------------------------------------------------------------
# Driving
# --------------------------------------------------------------------------


def iter_sources(paths):
    exts = (".h", ".cc")
    for root in paths:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    yield os.path.join(dirpath, fn)


def build_model(frontend, paths, compile_commands):
    model = Model()
    if frontend == "clang":
        clangxx = shutil.which("clang++")
        if clangxx is None:
            print("analyze.py: --frontend=clang but no clang++ on PATH; "
                  "use --frontend=builtin (the pinned gate) instead",
                  file=sys.stderr)
            return None
        if not compile_commands or not os.path.exists(compile_commands):
            print("analyze.py: clang frontend needs --compile-commands "
                  "pointing at a compile_commands.json", file=sys.stderr)
            return None
        # Headers carry class/mutex declarations the AST of each TU
        # already includes; the builtin pre-pass on headers fills any
        # gaps (e.g. classes only used header-only).
        headers = [p for p in iter_sources(paths) if p.endswith(".h")]
        for path in headers:
            rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
            builtin_parse_file(model, path, rel, phase="decls")
        for path in headers:
            rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
            builtin_parse_file(model, path, rel, phase="facts")
        ClangFrontend(model, clangxx).parse_compile_commands(compile_commands)
        return model
    # builtin: a decls pass over everything first, so mutex names, field
    # types and annotations are all known before any body is parsed
    # (inline methods may precede the members they use; .cc files use
    # classes declared elsewhere).
    ordered = sorted(iter_sources(paths),
                     key=lambda p: (not p.endswith(".h"), p))
    for path in ordered:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        builtin_parse_file(model, path, rel, phase="decls")
    for path in ordered:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        builtin_parse_file(model, path, rel, phase="facts")
    return model


def pick_frontend(requested):
    if requested != "auto":
        return requested
    return "clang" if shutil.which("clang++") else "builtin"


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(
    r"//\s*expect-analyze:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def run_self_test(frontend):
    """Fixtures in scripts/analyze_fixtures/ seed one violation per
    `// expect-analyze: check[, check]` comment; the self-test fails if
    any expected finding is missed or any unexpected one fires. The
    fixtures are valid C++ (they compile with the real headers absent --
    support.h carries mini shims), so the clang frontend can analyze
    them too wherever clang++ exists."""
    if not os.path.isdir(FIXTURE_DIR):
        print("analyze.py --self-test: no fixture dir", FIXTURE_DIR,
              file=sys.stderr)
        return 2
    files = [os.path.join(FIXTURE_DIR, f)
             for f in sorted(os.listdir(FIXTURE_DIR))
             if f.endswith((".h", ".cc"))]
    if not files:
        print("analyze.py --self-test: no fixtures found", file=sys.stderr)
        return 2

    fe = pick_frontend(frontend)
    model = Model()
    if fe == "clang":
        clangxx = shutil.which("clang++")
        cf = ClangFrontend(model, clangxx)
        for path in files:
            rel = "scripts/analyze_fixtures/" + os.path.basename(path)
            if path.endswith(".h"):
                builtin_parse_file(model, path, rel, phase="decls")
        for path in files:
            rel = "scripts/analyze_fixtures/" + os.path.basename(path)
            if path.endswith(".h"):
                builtin_parse_file(model, path, rel, phase="facts")
        for path in files:
            rel = "scripts/analyze_fixtures/" + os.path.basename(path)
            if path.endswith(".cc"):
                cf.parse_tu(path, rel,
                            ["clang++", "-std=c++20", "-I", FIXTURE_DIR])
    else:
        for path in files:
            rel = "scripts/analyze_fixtures/" + os.path.basename(path)
            builtin_parse_file(model, path, rel, phase="decls")
        for path in files:
            rel = "scripts/analyze_fixtures/" + os.path.basename(path)
            builtin_parse_file(model, path, rel, phase="facts")

    findings = Analyzer(model).run()

    expected = defaultdict(set)  # (relfile, line) -> {checks}
    for path in files:
        rel = "scripts/analyze_fixtures/" + os.path.basename(path)
        with open(path, encoding="utf-8") as f:
            for idx, ln in enumerate(f.read().split("\n"), start=1):
                m = EXPECT_RE.search(ln)
                if m:
                    expected[(rel, idx)] |= {
                        c.strip() for c in m.group(1).split(",")}
    got = defaultdict(set)
    for f in findings:
        got[(f.file, f.line)].add(f.check)

    failures = 0
    for loc, checks in sorted(expected.items()):
        missing = checks - got.get(loc, set())
        for c in sorted(missing):
            print(f"SELF-TEST FAIL {loc[0]}:{loc[1]}: expected [{c}], "
                  f"not fired")
            failures += 1
    for loc, checks in sorted(got.items()):
        unexpected = checks - expected.get(loc, set())
        for c in sorted(unexpected):
            print(f"SELF-TEST FAIL {loc[0]}:{loc[1]}: unexpected [{c}]")
            failures += 1
    if failures:
        print(f"analyze.py --self-test ({fe} frontend): {failures} "
              f"failure(s).")
        return 1
    n = sum(len(v) for v in expected.values())
    print(f"analyze.py --self-test ({fe} frontend): {len(files)} fixture "
          f"file(s), {n} seeded finding(s), all detected, no extras.")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files or directories to analyze (default: src/ "
                    "bench/ examples/)")
    ap.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                    default="builtin",
                    help="fact extractor (default: builtin -- the pinned "
                    "gate; clang is an opt-in cross-check)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json (required for clang mode; "
                    "accepted and used only as a TU filter otherwise)")
    ap.add_argument("--self-test", action="store_true",
                    help="analyze the seeded fixtures and verify every "
                    "expected finding fires exactly where declared")
    ap.add_argument("--write-baseline", action="store_true",
                    help="regenerate scripts/analyze_baseline.json from "
                    "current guarded-by findings (shrink-only: run this "
                    "only after paying debt down)")
    ap.add_argument("--all", action="store_true",
                    help="print suppressed/baselined findings too")
    ap.add_argument("--write-shardmap", action="store_true",
                    help="regenerate scripts/analyze_shardmap.json from "
                    "the src/ model and exit")
    ap.add_argument("--check-shardmap", action="store_true",
                    help="fail if scripts/analyze_shardmap.json drifts "
                    "from what the current tree regenerates (run by "
                    "check.sh stage 1b and CI)")
    ap.add_argument("--format", choices=("text", "json"), default="text",
                    help="findings output: human text (default) or a "
                    "fingerprint-keyed JSON document (CI artifact)")
    args = ap.parse_args()

    if args.self_test:
        return run_self_test(args.frontend)

    frontend = pick_frontend(args.frontend)
    paths = args.paths or [os.path.join(REPO_ROOT, d)
                           for d in ("src", "bench", "examples")
                           if os.path.isdir(os.path.join(REPO_ROOT, d))]
    model = build_model(frontend, paths, args.compile_commands)
    if model is None:
        return 2

    analyzer = Analyzer(model)
    findings = analyzer.run()

    try:
        suppressions = load_entries(SUPPRESS_PATH, require_reason=True)
        baseline = load_entries(BASELINE_PATH, require_reason=False)
    except ValueError as e:
        print(f"analyze.py: {e}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(findings, suppressions)
        return 0

    if args.write_shardmap:
        with open(SHARDMAP_PATH, "w", encoding="utf-8") as f:
            f.write(shardmap_text(model, analyzer))
        print(f"analyze.py: wrote "
              f"{os.path.relpath(SHARDMAP_PATH, REPO_ROOT)}")
        return 0

    active, errors = apply_filters(findings, suppressions, baseline)

    if args.check_shardmap:
        want = shardmap_text(model, analyzer)
        have = ""
        if os.path.exists(SHARDMAP_PATH):
            with open(SHARDMAP_PATH, encoding="utf-8") as f:
                have = f.read()
        if want != have:
            errors.append(
                "scripts/analyze_shardmap.json is stale -- regenerate "
                "with scripts/analyze.py --write-shardmap and commit it "
                "(the shard map may not drift silently)")

    stats = (f"{len(model.classes)} classes, {len(model.functions)} "
             f"functions, frontend={frontend}")

    if args.format == "json":
        doc = {
            "schema": "edadb-analyze-findings-v1",
            "frontend": frontend,
            "clean": not (active or errors),
            "stats": {"classes": len(model.classes),
                      "functions": len(model.functions)},
            "findings": {
                f.fingerprint: {
                    "check": f.check, "key": f.key, "file": f.file,
                    "line": f.line, "message": f.message,
                    "evidence": f.evidence,
                } for f in active},
            "errors": errors,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 1 if (active or errors) else 0

    if args.all:
        for f in findings:
            print(f.render())
        if findings:
            print(f"-- {len(findings)} total finding(s) before "
                  f"suppression/baseline --")

    for f in active:
        print(f.render())
    for e in errors:
        print(f"analyze.py: {e}")

    if active or errors:
        print(f"analyze.py: {len(active)} finding(s), {len(errors)} "
              f"stale entr(ies). [{stats}]")
        return 1
    print(f"analyze.py: clean. [{stats}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
