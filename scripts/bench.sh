#!/usr/bin/env bash
# Runs the full benchmark suite in Release and merges every binary's
# --json output into one BENCH_<date>.json at the repo root.
#
# Environment knobs:
#   BENCH_BUILD_DIR  build directory (default: <repo>/build-bench)
#   BENCH_OUT        output file (default: <repo>/BENCH_<YYYYMMDD>.json)
#   BENCH_FILTER     --benchmark_filter regex passed to every binary
#   BENCH_MIN_TIME   --benchmark_min_time seconds (e.g. 0.01 for smoke)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BENCH_BUILD_DIR:-$ROOT/build-bench}"
OUT="${BENCH_OUT:-$ROOT/BENCH_$(date +%Y%m%d).json}"

BENCHES=(bench_capture bench_queue bench_storage bench_rules
         bench_rule_churn bench_pubsub bench_cq bench_models
         bench_virt bench_e2e)

cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target "${BENCHES[@]}" -j"$(nproc)"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bench in "${BENCHES[@]}"; do
  args=("--json=$TMP/$bench.json")
  [[ -n "${BENCH_FILTER:-}" ]] && args+=("--benchmark_filter=$BENCH_FILTER")
  [[ -n "${BENCH_MIN_TIME:-}" ]] && args+=("--benchmark_min_time=$BENCH_MIN_TIME")
  echo "=== $bench ==="
  "$BUILD_DIR/bench/$bench" "${args[@]}"
done

python3 - "$OUT" "$TMP" <<'EOF'
import glob, json, os, sys
out, tmp = sys.argv[1], sys.argv[2]
merged = []
for path in sorted(glob.glob(os.path.join(tmp, "*.json"))):
    if path.endswith(".metrics.json"):
        continue
    with open(path) as f:
        merged.extend(json.load(f))
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out}: {len(merged)} benchmark results")

# Pair each run's process-metrics snapshot (what the system *did* —
# WAL syncs, group-commit sizes, queue latencies) with the timings.
metrics = {}
for path in sorted(glob.glob(os.path.join(tmp, "*.metrics.json"))):
    bench = os.path.basename(path)[: -len(".json.metrics.json")]
    with open(path) as f:
        metrics[bench] = json.load(f)
metrics_out = out[: -len(".json")] + ".metrics.json" if out.endswith(".json") else out + ".metrics.json"
with open(metrics_out, "w") as f:
    json.dump(metrics, f, indent=2)
    f.write("\n")
print(f"wrote {metrics_out}: snapshots from {len(metrics)} benchmark binaries")
EOF
