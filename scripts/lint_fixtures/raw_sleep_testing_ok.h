// fixture-path: tests/testing/raw_sleep_ok.h
// tests/testing/ is the exempt corral for real sleeps: nothing here may
// fire raw-sleep even without a lint:allow marker.

namespace edadb::testing {

inline void SleepHelper() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace edadb::testing
