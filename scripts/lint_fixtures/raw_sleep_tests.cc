// fixture-path: tests/mq/raw_sleep_fixture_test.cc
// raw-sleep applies to tests/ too: a sleep in a test is a race against
// the scheduler. The helper in tests/testing/sleep.h (exempt directory,
// see raw_sleep_testing_ok.h) is the one corral.

namespace edadb {

void SleepyTest() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // expect-lint: raw-sleep
}

}  // namespace edadb
