// fixture-path: src/fixture/violations.cc
// Seeded violations for `scripts/lint.py --self-test`. Every offending
// line carries an `// expect-lint: <rule>` marker; the self-test fails
// if a marked line does not fire or an unmarked line does. This file is
// never compiled — it only needs to *look* like edadb source.

#include <mutex>

namespace edadb {

struct Thing {
  int x;
};

void RawMutexUses() {
  std::mutex mu;                       // expect-lint: raw-mutex
  std::lock_guard<std::mutex> g(mu);   // expect-lint: raw-mutex
  std::condition_variable cv;          // expect-lint: raw-mutex
  (void)g;
  (void)cv;
}

void RawIoUses(int fd, const char* path) {
  ::fsync(fd);                     // expect-lint: raw-io
  int fd2 = ::open(path, 0);       // expect-lint: raw-io
  ::write(fd2, path, 1);           // expect-lint: raw-io
  ::close(fd2);                    // expect-lint: raw-io
}

int Fallible();

void VoidDiscards(Thing* t) {
  (void)Fallible();                // expect-lint: void-status-discard
  (void)t->x;                      // identifier-ish, no call: legal
  static_cast<void>(Fallible());   // expect-lint: void-status-discard
  (void)t;                         // unused-parameter idiom: legal
}

#define FAILPOINT(name) (void)(name)

void FailpointNames() {
  FAILPOINT("wal:append:before");  // expect-lint: failpoint-name
  FAILPOINT("BadModule.Site");     // expect-lint: failpoint-name
  FAILPOINT("nodots");             // expect-lint: failpoint-name
  FAILPOINT("wal.append.before");  // conforming: legal
}

void RawNewDelete() {
  Thing* t = new Thing();          // expect-lint: raw-new-delete
  delete t;                        // expect-lint: raw-new-delete
  int* arr = new int[4];           // expect-lint: raw-new-delete
  delete[] arr;                    // expect-lint: raw-new-delete
  Thing* leak = new Thing();       // lint:allow(raw-new-delete): fixture demonstrates suppression
  (void)leak;
  auto p = std::unique_ptr<Thing>(new Thing());  // factory wrap: legal
  (void)p;
}

struct NoCopy {
  NoCopy(const NoCopy&) = delete;  // `= delete` is not a raw delete: legal
};

struct QueueStats {               // expect-lint: adhoc-stats
  int depth = 0;
};

struct PumpStats {                // lint:allow(adhoc-stats): fixture demonstrates suppression
  int pumped = 0;
};

struct Statistics {               // not a `...Stats` name: legal
  int x = 0;
};

void RawSleeps() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect-lint: raw-sleep
  usleep(100);                      // expect-lint: raw-sleep
  struct timespec ts { 0, 100 };
  nanosleep(&ts, nullptr);          // expect-lint: raw-sleep
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lint:allow(raw-sleep): fixture demonstrates suppression
}

// Comments and strings must not fire rules: std::mutex, ::fsync(fd),
// (void)Fallible(), new Thing, delete t, sleep_for(1ms).
const char* kDecoy = "std::mutex ::fsync(0) (void)Call() new delete";

}  // namespace edadb
